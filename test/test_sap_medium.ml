module Task = Core.Task
module Path = Core.Path

let case = Helpers.case

(* Medium tasks in the Theorem 4 configuration: ratios in (1/4, 1/2]. *)
let medium_instance ?(max_tasks = 8) seed =
  Helpers.tiny_ratio_instance ~max_tasks ~lo:0.25 ~hi:0.5 seed

(* ---------- Elevator DP ---------- *)

let elevator_optimal_vs_brute =
  Helpers.seed_property ~count:30 "optimal_band = brute force" (fun seed ->
      let path, tasks = medium_instance ~max_tasks:7 seed in
      let cap = Path.max_capacity path in
      let r = Sap.Elevator.optimal_band ~cap path tasks in
      let brute = Exact.Sap_brute.value path tasks in
      r.Sap.Elevator.exact
      && Result.is_ok (Core.Checker.sap_feasible path r.Sap.Elevator.solution)
      && Helpers.close_enough (Core.Solution.sap_weight r.Sap.Elevator.solution) brute)

let elevator_respects_cap =
  Helpers.seed_property ~count:30 "optimal_band respects the clip cap" (fun seed ->
      let path, tasks = medium_instance seed in
      let cap = max 2 (Path.max_capacity path / 2) in
      let r = Sap.Elevator.optimal_band ~cap path tasks in
      Core.Solution.max_makespan path r.Sap.Elevator.solution <= cap)

let elevator_empty () =
  let path = Path.uniform ~edges:3 ~capacity:8 in
  let r = Sap.Elevator.optimal_band ~cap:8 path [] in
  Alcotest.(check int) "empty" 0 (List.length r.Sap.Elevator.solution);
  Alcotest.(check bool) "exact" true r.Sap.Elevator.exact

let elevator_state_cap_flag () =
  (* A generous instance with max_states=1 must trip the exactness flag
     (or finish trivially). *)
  let path = Path.uniform ~edges:4 ~capacity:12 in
  let prng = Util.Prng.create 4 in
  let tasks = Gen.Workloads.ratio_tasks ~prng ~path ~n:8 ~lo:0.25 ~hi:0.5 () in
  let r = Sap.Elevator.optimal_band ~cap:12 ~max_states:1 path tasks in
  Alcotest.(check bool) "flag tripped" false r.Sap.Elevator.exact;
  Helpers.assert_feasible_sap path r.Sap.Elevator.solution

(* ---------- Exact_dp wrapper ---------- *)

let exact_dp_matches_brute =
  Helpers.seed_property ~count:30 "Exact_dp = brute force when exact" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:8 seed in
      match Sap.Exact_dp.value path tasks with
      | None -> true (* cap hit: no claim *)
      | Some v -> Helpers.close_enough v (Exact.Sap_brute.value path tasks))

let exact_dp_truncation_returns_none () =
  let path = Path.uniform ~edges:4 ~capacity:12 in
  let prng = Util.Prng.create 4 in
  let tasks = Gen.Workloads.mixed_tasks ~prng ~path ~n:8 () in
  Alcotest.(check bool) "None under a 1-state cap" true
    (Sap.Exact_dp.solve ~max_states:1 path tasks = None)

let exact_dp_empty () =
  let path = Path.uniform ~edges:2 ~capacity:4 in
  Alcotest.(check bool) "empty exact" true (Sap.Exact_dp.solve path [] = Some [])

(* ---------- partition (Lemma 14) ---------- *)

let partition_elevated_properties =
  Helpers.seed_property ~count:30 "partition halves are elevated and disjoint"
    (fun seed ->
      let path, tasks = medium_instance seed in
      let cap = Path.max_capacity path in
      let r = Sap.Elevator.optimal_band ~cap path tasks in
      let sol = r.Sap.Elevator.solution in
      let elevation = 2 in
      let s1, s2 = Sap.Elevator.partition_elevated ~elevation path ~cap sol in
      List.length s1 + List.length s2 = List.length sol
      && List.for_all (fun (_, h) -> h >= elevation) s1
      && List.for_all (fun (_, h) -> h >= elevation) s2
      && Helpers.close_enough
           (Core.Solution.sap_weight s1 +. Core.Solution.sap_weight s2)
           (Core.Solution.sap_weight sol))

let elevator_solve_half_weight =
  (* Lemma 15: the returned half carries at least half the band optimum. *)
  Helpers.seed_property ~count:25 "solve returns >= optimum/2" (fun seed ->
      let g = Util.Prng.create seed in
      let k = 3 and ell = 1 and q = 2 in
      let cap = 1 lsl (k + ell) in
      let edges = 3 + Util.Prng.int g 3 in
      let caps = Array.init edges (fun _ -> (1 lsl k) + Util.Prng.int g (cap - (1 lsl k))) in
      let path = Path.create caps in
      let tasks = Gen.Workloads.ratio_tasks ~prng:g ~path ~n:6 ~lo:0.25 ~hi:0.5 () in
      let r = Sap.Elevator.solve ~k ~ell ~q path tasks in
      let opt = Exact.Sap_brute.value path tasks in
      Result.is_ok (Core.Checker.sap_feasible path r.Sap.Elevator.solution)
      && (opt <= 1e-9
          || Core.Solution.sap_weight r.Sap.Elevator.solution >= (opt /. 2.0) -. 1e-9))

let elevator_solve_is_elevated =
  Helpers.seed_property ~count:25 "solve output is 2^(k-q)-elevated" (fun seed ->
      let g = Util.Prng.create seed in
      let k = 4 and ell = 1 and q = 2 in
      let cap = 1 lsl (k + ell) in
      let edges = 3 + Util.Prng.int g 3 in
      let caps = Array.init edges (fun _ -> (1 lsl k) + Util.Prng.int g (cap - (1 lsl k))) in
      let path = Path.create caps in
      let tasks = Gen.Workloads.ratio_tasks ~prng:g ~path ~n:6 ~lo:0.25 ~hi:0.5 () in
      let r = Sap.Elevator.solve ~k ~ell ~q path tasks in
      List.for_all (fun (_, h) -> h >= 1 lsl (k - q)) r.Sap.Elevator.solution)

(* ---------- AlmostUniform ---------- *)

let almost_uniform_feasible =
  Helpers.seed_property ~count:30 "AlmostUniform output feasible" (fun seed ->
      let path, tasks = medium_instance ~max_tasks:10 seed in
      let r = Sap.Almost_uniform.run ~ell:2 ~q:2 path tasks in
      Result.is_ok (Core.Checker.sap_feasible path r.Sap.Almost_uniform.solution)
      && Core.Checker.subset_of
           (Core.Solution.sap_tasks r.Sap.Almost_uniform.solution)
           tasks)

let almost_uniform_ratio =
  (* The instantiated guarantee at (ell, q) is alpha * (ell+q) / ell with
     alpha = 2 (Lemma 9): ell = 2, q = 2 gives 4; asymptotically 2+eps as
     ell grows.  Assert the instantiated constant. *)
  Helpers.seed_property ~count:20 "ratio <= 2(ell+q)/ell vs exact" (fun seed ->
      let path, tasks = medium_instance ~max_tasks:7 seed in
      let r = Sap.Almost_uniform.run ~ell:2 ~q:2 path tasks in
      let opt = Exact.Sap_brute.value path tasks in
      opt <= 1e-9
      || Core.Solution.sap_weight r.Sap.Almost_uniform.solution
         >= (opt /. 4.0) -. 1e-9)

let almost_uniform_band_solutions_elevated =
  Helpers.seed_property ~count:20 "per-band solutions are elevated" (fun seed ->
      let path, tasks = medium_instance seed in
      let q = 2 in
      let r = Sap.Almost_uniform.run ~ell:2 ~q path tasks in
      List.for_all
        (fun (b : Sap.Almost_uniform.band_outcome) ->
          let elevation = if b.Sap.Almost_uniform.k >= q then 1 lsl (b.Sap.Almost_uniform.k - q) else 1 in
          List.for_all (fun (_, h) -> h >= elevation) b.Sap.Almost_uniform.band_solution
          || b.Sap.Almost_uniform.band_solution = [])
        r.Sap.Almost_uniform.bands)

let ell_for_eps_values () =
  Alcotest.(check int) "eps=0.5, q=2 -> ell=4" 4
    (Sap.Almost_uniform.ell_for_eps ~eps:0.5 ~q:2);
  Alcotest.(check int) "eps=1, q=2 -> ell=2" 2
    (Sap.Almost_uniform.ell_for_eps ~eps:1.0 ~q:2);
  Alcotest.check_raises "eps=0 rejected"
    (Invalid_argument "Almost_uniform.ell_for_eps") (fun () ->
      ignore (Sap.Almost_uniform.ell_for_eps ~eps:0.0 ~q:2))

let almost_uniform_direct_dominates =
  (* Per band the direct elevated DP is at least the partition half, so the
     best residue union can only improve. *)
  Helpers.seed_property ~count:15 "framework: Direct >= Partition" (fun seed ->
      let path, tasks = medium_instance ~max_tasks:8 seed in
      let part = Sap.Almost_uniform.run ~ell:2 ~q:2 ~strategy:`Partition path tasks in
      let direct = Sap.Almost_uniform.run ~ell:2 ~q:2 ~strategy:`Direct path tasks in
      Result.is_ok
        (Core.Checker.sap_feasible path direct.Sap.Almost_uniform.solution)
      && Core.Solution.sap_weight direct.Sap.Almost_uniform.solution
         >= Core.Solution.sap_weight part.Sap.Almost_uniform.solution -. 1e-9)

let almost_uniform_rejects_bad_args () =
  let path = Path.uniform ~edges:2 ~capacity:4 in
  Alcotest.check_raises "ell=0" (Invalid_argument "Almost_uniform.run: ell, q >= 1")
    (fun () -> ignore (Sap.Almost_uniform.run ~ell:0 ~q:2 path []))

let () =
  Alcotest.run "sap_medium"
    [
      ( "elevator_dp",
        [
          elevator_optimal_vs_brute;
          elevator_respects_cap;
          case "empty" elevator_empty;
          case "state cap flag" elevator_state_cap_flag;
        ] );
      ( "exact_dp",
        [
          exact_dp_matches_brute;
          case "truncation returns None" exact_dp_truncation_returns_none;
          case "empty" exact_dp_empty;
        ] );
      ( "partition",
        [
          partition_elevated_properties;
          elevator_solve_half_weight;
          elevator_solve_is_elevated;
        ] );
      ( "almost_uniform",
        [
          almost_uniform_feasible;
          almost_uniform_ratio;
          almost_uniform_band_solutions_elevated;
          almost_uniform_direct_dominates;
          case "ell_for_eps" ell_for_eps_values;
          case "bad args" almost_uniform_rejects_bad_args;
        ] );
    ]
