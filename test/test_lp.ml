module Task = Core.Task
module Path = Core.Path
module Simplex_reference = Lp.Simplex_reference

let case = Helpers.case

(* ---------- Simplex on hand-built LPs ---------- *)

let simplex_known_2d () =
  (* max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18 -> opt 36 at (2,6). *)
  let problem =
    {
      Lp.Simplex.objective = [| 3.0; 5.0 |];
      rows =
        [
          ([| 1.0; 0.0 |], 4.0);
          ([| 0.0; 2.0 |], 12.0);
          ([| 3.0; 2.0 |], 18.0);
        ];
    }
  in
  match Lp.Simplex.maximize problem with
  | Lp.Simplex.Optimal { value; solution; _ } ->
      Alcotest.(check bool) "value 36" true (Helpers.close_enough value 36.0);
      Alcotest.(check bool) "x=2" true (Helpers.close_enough solution.(0) 2.0);
      Alcotest.(check bool) "y=6" true (Helpers.close_enough solution.(1) 6.0)
  | Lp.Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"

let simplex_degenerate () =
  (* Degenerate vertex: redundant constraints through the optimum. *)
  let problem =
    {
      Lp.Simplex.objective = [| 1.0; 1.0 |];
      rows =
        [
          ([| 1.0; 0.0 |], 1.0);
          ([| 0.0; 1.0 |], 1.0);
          ([| 1.0; 1.0 |], 2.0);
          ([| 2.0; 2.0 |], 4.0);
        ];
    }
  in
  match Lp.Simplex.maximize problem with
  | Lp.Simplex.Optimal { value; _ } ->
      Alcotest.(check bool) "value 2" true (Helpers.close_enough value 2.0)
  | Lp.Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"

let simplex_unbounded () =
  let problem =
    { Lp.Simplex.objective = [| 1.0; 0.0 |]; rows = [ ([| 0.0; 1.0 |], 1.0) ] }
  in
  match Lp.Simplex.maximize problem with
  | Lp.Simplex.Unbounded -> ()
  | Lp.Simplex.Optimal _ -> Alcotest.fail "should be unbounded"

let simplex_rejects_negative_rhs () =
  Alcotest.check_raises "negative rhs" (Invalid_argument "Simplex: negative rhs")
    (fun () ->
      ignore
        (Lp.Simplex.maximize
           { Lp.Simplex.objective = [| 1.0 |]; rows = [ ([| 1.0 |], -1.0) ] }))

let simplex_solution_feasible =
  Helpers.seed_property ~count:50 "simplex output satisfies its constraints"
    (fun seed ->
      let g = Util.Prng.create seed in
      let n = 1 + Util.Prng.int g 5 in
      let r = 1 + Util.Prng.int g 6 in
      let objective = Array.init n (fun _ -> Util.Prng.float g 10.0) in
      let rows =
        List.init r (fun _ ->
            ( Array.init n (fun _ -> Util.Prng.float g 5.0),
              1.0 +. Util.Prng.float g 20.0 ))
      in
      (* Add box rows so the LP is bounded. *)
      let rows = rows @ List.init n (fun j -> Lp.Simplex.box_row ~n j 10.0) in
      match Lp.Simplex.maximize { Lp.Simplex.objective; rows } with
      | Lp.Simplex.Unbounded -> false
      | Lp.Simplex.Optimal { solution; value; _ } ->
          let tol = 1e-6 in
          Array.for_all (fun x -> x >= -.tol) solution
          && List.for_all
               (fun (a, b) ->
                 let lhs = ref 0.0 in
                 Array.iteri (fun i ai -> lhs := !lhs +. (ai *. solution.(i))) a;
                 !lhs <= b +. tol)
               rows
          &&
          let obj = ref 0.0 in
          Array.iteri (fun i c -> obj := !obj +. (c *. solution.(i))) objective;
          Helpers.close_enough ~tol:1e-6 !obj value)

(* ---------- sparse bounded core vs dense reference oracle ---------- *)

(* Random packing LPs (nonnegative coefficients, box rows keep them
   bounded): the sparse bounded-variable core and the retired dense
   tableau must find the same optimum. *)
let simplex_matches_reference_packing =
  Helpers.seed_property ~count:80 "sparse core = dense reference (packing LPs)"
    (fun seed ->
      let g = Util.Prng.create seed in
      let n = 1 + Util.Prng.int g 6 in
      let r = Util.Prng.int g 7 in
      let objective = Array.init n (fun _ -> Util.Prng.float g 10.0) in
      let rows =
        List.init r (fun _ ->
            ( Array.init n (fun _ ->
                  if Util.Prng.bernoulli g 0.4 then 0.0
                  else Util.Prng.float g 5.0),
              Util.Prng.float g 20.0 ))
      in
      let rows =
        rows @ List.init n (fun j -> Lp.Simplex.box_row ~n j (Util.Prng.float g 8.0))
      in
      let p = { Lp.Simplex.objective; rows } in
      let q = { Simplex_reference.objective; rows } in
      match (Lp.Simplex.maximize p, Simplex_reference.maximize q) with
      | Lp.Simplex.Optimal { value = v; solution; _ },
        Simplex_reference.Optimal { value = v'; _ } ->
          (* Same optimum, and the sparse core's point achieves it. *)
          Helpers.close_enough ~tol:1e-6 v v'
          &&
          let obj = ref 0.0 in
          Array.iteri (fun i c -> obj := !obj +. (c *. solution.(i))) objective;
          Helpers.close_enough ~tol:1e-6 !obj v
      | _ -> false)

(* Mixed-sign coefficients (rhs still >= 0, so the all-slack basis stays
   feasible): both solvers must agree on bounded vs unbounded, and on the
   value when bounded. *)
let simplex_matches_reference_mixed =
  Helpers.seed_property ~count:80 "sparse core = dense reference (mixed signs)"
    (fun seed ->
      let g = Util.Prng.create seed in
      let n = 1 + Util.Prng.int g 5 in
      let r = 1 + Util.Prng.int g 6 in
      let objective = Array.init n (fun _ -> Util.Prng.float g 10.0 -. 3.0) in
      let rows =
        List.init r (fun _ ->
            ( Array.init n (fun _ ->
                  if Util.Prng.bernoulli g 0.3 then 0.0
                  else Util.Prng.float g 6.0 -. 2.0),
              Util.Prng.float g 15.0 ))
      in
      let p = { Lp.Simplex.objective; rows } in
      let q = { Simplex_reference.objective; rows } in
      match (Lp.Simplex.maximize p, Simplex_reference.maximize q) with
      | Lp.Simplex.Unbounded, Simplex_reference.Unbounded -> true
      | Lp.Simplex.Optimal { value = v; _ }, Simplex_reference.Optimal { value = v'; _ }
        ->
          Helpers.close_enough ~tol:1e-6 v v'
      | _ -> false)

let simplex_bounded_pure_flips () =
  (* No rows at all: the optimum is every profitable variable at its upper
     bound, reached by bound flips alone (zero pivots). *)
  match
    Lp.Simplex.maximize_bounded ~objective:[| 2.0; -1.0; 3.0 |]
      ~upper:[| 4.0; 5.0; 0.5 |] ~rows:[] ()
  with
  | Lp.Simplex.Optimal { value; solution; _ } ->
      Alcotest.(check bool) "value 9.5" true (Helpers.close_enough value 9.5);
      Alcotest.(check bool) "x0=4" true (Helpers.close_enough solution.(0) 4.0);
      Alcotest.(check bool) "x1=0" true (Helpers.close_enough solution.(1) 0.0);
      Alcotest.(check bool) "x2=0.5" true (Helpers.close_enough solution.(2) 0.5)
  | Lp.Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"

let simplex_bounded_fixed_variable () =
  (* upper = 0 fixes a variable: it must never enter (this used to be the
     infinite-flip trap) and the rest solves normally. *)
  match
    Lp.Simplex.maximize_bounded ~objective:[| 5.0; 1.0 |] ~upper:[| 0.0; 1.0 |]
      ~rows:[ ([| 0; 1 |], [| 1.0; 1.0 |], 10.0) ] ()
  with
  | Lp.Simplex.Optimal { value; solution; _ } ->
      Alcotest.(check bool) "value 1" true (Helpers.close_enough value 1.0);
      Alcotest.(check bool) "x0 fixed" true (Helpers.close_enough solution.(0) 0.0)
  | Lp.Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"

let simplex_bounded_unbounded () =
  match
    Lp.Simplex.maximize_bounded ~objective:[| 1.0; 1.0 |]
      ~upper:[| infinity; 2.0 |] ~rows:[ ([| 1 |], [| 1.0 |], 1.0) ] ()
  with
  | Lp.Simplex.Unbounded -> ()
  | Lp.Simplex.Optimal _ -> Alcotest.fail "x0 is unbounded"

let simplex_bounded_matches_boxed_reference =
  (* maximize_bounded with finite uppers = the same LP with explicit box
     rows handed to the dense reference. *)
  Helpers.seed_property ~count:60 "maximize_bounded = reference with box rows"
    (fun seed ->
      let g = Util.Prng.create seed in
      let n = 1 + Util.Prng.int g 5 in
      let r = 1 + Util.Prng.int g 5 in
      let objective = Array.init n (fun _ -> Util.Prng.float g 10.0) in
      let upper = Array.init n (fun _ -> Util.Prng.float g 3.0) in
      let dense_rows =
        List.init r (fun _ ->
            ( Array.init n (fun _ ->
                  if Util.Prng.bernoulli g 0.5 then 0.0
                  else 1.0 +. Util.Prng.float g 4.0),
              1.0 +. Util.Prng.float g 12.0 ))
      in
      let sparse_rows =
        List.map
          (fun (a, b) ->
            let cols =
              Array.to_list (Array.mapi (fun j x -> (j, x)) a)
              |> List.filter (fun (_, x) -> x <> 0.0)
            in
            ( Array.of_list (List.map fst cols),
              Array.of_list (List.map snd cols),
              b ))
          dense_rows
      in
      let reference =
        Simplex_reference.maximize
          {
            Simplex_reference.objective;
            rows =
              dense_rows
              @ List.init n (fun j -> Simplex_reference.box_row ~n j upper.(j));
          }
      in
      match
        (Lp.Simplex.maximize_bounded ~objective ~upper ~rows:sparse_rows (), reference)
      with
      | Lp.Simplex.Optimal { value = v; _ }, Simplex_reference.Optimal { value = v'; _ }
        ->
          Helpers.close_enough ~tol:1e-6 v v'
      | _ -> false)

(* ---------- UFPP LP ---------- *)

let ufpp_lp_upper_bounds_exact =
  Helpers.seed_property ~count:40 "LP >= exact UFPP >= exact SAP" (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      let lp = Lp.Ufpp_lp.upper_bound path tasks in
      let ufpp = Ufpp.Exact_bb.value path tasks in
      let sap = Exact.Sap_brute.value path tasks in
      lp >= ufpp -. 1e-6 && ufpp >= sap -. 1e-9)

let ufpp_lp_saturates_single_edge () =
  (* One edge, two tasks: the LP is a fractional knapsack. *)
  let path = Path.create [| 10 |] in
  let mk id d w = Task.make ~id ~first_edge:0 ~last_edge:0 ~demand:d ~weight:w in
  let r = Lp.Ufpp_lp.solve path [ mk 0 6 6.0; mk 1 6 3.0 ] in
  (* x0 = 1, x1 = 4/6. *)
  Alcotest.(check bool) "value 8" true (Helpers.close_enough r.Lp.Ufpp_lp.value 8.0)

let ufpp_lp_unfit_task_zeroed () =
  let path = Path.create [| 4; 2 |] in
  let t = Task.make ~id:0 ~first_edge:0 ~last_edge:1 ~demand:3 ~weight:5.0 in
  let r = Lp.Ufpp_lp.solve path [ t ] in
  Alcotest.(check bool) "zero value" true (Helpers.close_enough r.Lp.Ufpp_lp.value 0.0);
  Alcotest.(check bool) "zero x" true (Helpers.close_enough r.Lp.Ufpp_lp.solution.(0) 0.0)

let ufpp_lp_scaled () =
  let path = Path.create [| 10 |] in
  let t = Task.make ~id:0 ~first_edge:0 ~last_edge:0 ~demand:10 ~weight:1.0 in
  let full = Lp.Ufpp_lp.solve path [ t ] in
  let half = Lp.Ufpp_lp.solve_scaled path ~scale:0.5 [ t ] in
  Alcotest.(check bool) "full takes task" true
    (Helpers.close_enough full.Lp.Ufpp_lp.value 1.0);
  Alcotest.(check bool) "half rejects (demand > scaled bottleneck)" true
    (Helpers.close_enough half.Lp.Ufpp_lp.value 0.0)

let ufpp_lp_matches_dense_reference =
  (* The sparse O(total span) row build + implicit bounds must price
     instances exactly like the historical dense construction (one dense
     row per used edge, explicit box rows, dense simplex). *)
  Helpers.seed_property ~count:40 "Ufpp_lp.solve = dense reference construction"
    (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      let fits (j : Task.t) = j.Task.demand <= Path.bottleneck_of path j in
      let cols = List.filter fits tasks |> Array.of_list in
      let n = Array.length cols in
      let lp = Lp.Ufpp_lp.solve path tasks in
      if n = 0 then Helpers.close_enough lp.Lp.Ufpp_lp.value 0.0
      else begin
        let objective = Array.map (fun (j : Task.t) -> j.Task.weight) cols in
        let m = Path.num_edges path in
        let capacity_rows = ref [] in
        for e = m - 1 downto 0 do
          if Array.exists (fun j -> Task.uses j e) cols then begin
            let a =
              Array.map
                (fun (j : Task.t) ->
                  if Task.uses j e then float_of_int j.Task.demand else 0.0)
                cols
            in
            capacity_rows := (a, float_of_int (Path.capacity path e)) :: !capacity_rows
          end
        done;
        let rows =
          !capacity_rows @ List.init n (fun c -> Simplex_reference.box_row ~n c 1.0)
        in
        match Simplex_reference.maximize { Simplex_reference.objective; rows } with
        | Simplex_reference.Unbounded -> false
        | Simplex_reference.Optimal { value; _ } ->
            Helpers.close_enough ~tol:1e-6 lp.Lp.Ufpp_lp.value value
      end)

let ufpp_lp_integral_when_disjoint () =
  (* Disjoint tasks: LP optimum equals total weight. *)
  let path = Path.create [| 4; 4; 4; 4 |] in
  let mk id first last = Task.make ~id ~first_edge:first ~last_edge:last ~demand:3 ~weight:2.0 in
  let r = Lp.Ufpp_lp.solve path [ mk 0 0 1; mk 1 2 3 ] in
  Alcotest.(check bool) "value 4" true (Helpers.close_enough r.Lp.Ufpp_lp.value 4.0)

let ufpp_lp_warm_matches_cold =
  (* A warm-started re-solve after a task delta must reach the same LP
     optimum as a cold solve of the patched instance — a warm basis buys
     pivots, never a different answer.  Chains deltas so the basis handed
     forward is itself the product of a warm solve. *)
  Helpers.seed_property ~count:40 "warm-started re-solve = cold re-solve"
    (fun seed ->
      let prng = Util.Prng.create (seed + 1) in
      let path, tasks = Helpers.tiny_instance seed in
      let tasks = ref tasks in
      let next_id = ref 1000 in
      let warm = ref None in
      let ok = ref true in
      for _step = 1 to 5 do
        (match !tasks with
        | _ :: _ when Util.Prng.bool prng ->
            let ts = !tasks in
            let victim = List.nth ts (Util.Prng.int prng (List.length ts)) in
            tasks :=
              List.filter (fun (j : Task.t) -> j.Task.id <> victim.Task.id) ts
        | _ ->
            let edges = Path.num_edges path in
            let first_edge = Util.Prng.int prng edges in
            let last_edge =
              first_edge + Util.Prng.int prng (edges - first_edge)
            in
            let b = Path.bottleneck path ~first:first_edge ~last:last_edge in
            let demand = 1 + Util.Prng.int prng b in
            let weight = 1.0 +. Util.Prng.float prng 9.0 in
            let id = !next_id in
            incr next_id;
            tasks :=
              Task.make ~id ~first_edge ~last_edge ~demand ~weight :: !tasks);
        let r_warm, w =
          Lp.Ufpp_lp.solve_scaled_warm path ~scale:1.0 ?warm:!warm !tasks
        in
        warm := w;
        let r_cold = Lp.Ufpp_lp.solve_scaled path ~scale:1.0 !tasks in
        if
          not
            (Helpers.close_enough ~tol:1e-6 r_warm.Lp.Ufpp_lp.value
               r_cold.Lp.Ufpp_lp.value)
        then ok := false
      done;
      !ok)

let () =
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          case "known 2d" simplex_known_2d;
          case "degenerate" simplex_degenerate;
          case "unbounded" simplex_unbounded;
          case "negative rhs" simplex_rejects_negative_rhs;
          simplex_solution_feasible;
        ] );
      ( "simplex vs reference",
        [
          simplex_matches_reference_packing;
          simplex_matches_reference_mixed;
          case "pure bound flips" simplex_bounded_pure_flips;
          case "fixed variable" simplex_bounded_fixed_variable;
          case "unbounded with bounds" simplex_bounded_unbounded;
          simplex_bounded_matches_boxed_reference;
        ] );
      ( "ufpp_lp",
        [
          ufpp_lp_upper_bounds_exact;
          case "fractional knapsack" ufpp_lp_saturates_single_edge;
          case "unfit task zeroed" ufpp_lp_unfit_task_zeroed;
          case "scaled" ufpp_lp_scaled;
          ufpp_lp_matches_dense_reference;
          case "integral disjoint" ufpp_lp_integral_when_disjoint;
          ufpp_lp_warm_matches_cold;
        ] );
    ]
