module Task = Core.Task
module Path = Core.Path

let case = Helpers.case

(* ---------- Simplex on hand-built LPs ---------- *)

let simplex_known_2d () =
  (* max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18 -> opt 36 at (2,6). *)
  let problem =
    {
      Lp.Simplex.objective = [| 3.0; 5.0 |];
      rows =
        [
          ([| 1.0; 0.0 |], 4.0);
          ([| 0.0; 2.0 |], 12.0);
          ([| 3.0; 2.0 |], 18.0);
        ];
    }
  in
  match Lp.Simplex.maximize problem with
  | Lp.Simplex.Optimal { value; solution; _ } ->
      Alcotest.(check bool) "value 36" true (Helpers.close_enough value 36.0);
      Alcotest.(check bool) "x=2" true (Helpers.close_enough solution.(0) 2.0);
      Alcotest.(check bool) "y=6" true (Helpers.close_enough solution.(1) 6.0)
  | Lp.Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"

let simplex_degenerate () =
  (* Degenerate vertex: redundant constraints through the optimum. *)
  let problem =
    {
      Lp.Simplex.objective = [| 1.0; 1.0 |];
      rows =
        [
          ([| 1.0; 0.0 |], 1.0);
          ([| 0.0; 1.0 |], 1.0);
          ([| 1.0; 1.0 |], 2.0);
          ([| 2.0; 2.0 |], 4.0);
        ];
    }
  in
  match Lp.Simplex.maximize problem with
  | Lp.Simplex.Optimal { value; _ } ->
      Alcotest.(check bool) "value 2" true (Helpers.close_enough value 2.0)
  | Lp.Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"

let simplex_unbounded () =
  let problem =
    { Lp.Simplex.objective = [| 1.0; 0.0 |]; rows = [ ([| 0.0; 1.0 |], 1.0) ] }
  in
  match Lp.Simplex.maximize problem with
  | Lp.Simplex.Unbounded -> ()
  | Lp.Simplex.Optimal _ -> Alcotest.fail "should be unbounded"

let simplex_rejects_negative_rhs () =
  Alcotest.check_raises "negative rhs" (Invalid_argument "Simplex: negative rhs")
    (fun () ->
      ignore
        (Lp.Simplex.maximize
           { Lp.Simplex.objective = [| 1.0 |]; rows = [ ([| 1.0 |], -1.0) ] }))

let simplex_solution_feasible =
  Helpers.seed_property ~count:50 "simplex output satisfies its constraints"
    (fun seed ->
      let g = Util.Prng.create seed in
      let n = 1 + Util.Prng.int g 5 in
      let r = 1 + Util.Prng.int g 6 in
      let objective = Array.init n (fun _ -> Util.Prng.float g 10.0) in
      let rows =
        List.init r (fun _ ->
            ( Array.init n (fun _ -> Util.Prng.float g 5.0),
              1.0 +. Util.Prng.float g 20.0 ))
      in
      (* Add box rows so the LP is bounded. *)
      let rows = rows @ List.init n (fun j -> Lp.Simplex.box_row ~n j 10.0) in
      match Lp.Simplex.maximize { Lp.Simplex.objective; rows } with
      | Lp.Simplex.Unbounded -> false
      | Lp.Simplex.Optimal { solution; value; _ } ->
          let tol = 1e-6 in
          Array.for_all (fun x -> x >= -.tol) solution
          && List.for_all
               (fun (a, b) ->
                 let lhs = ref 0.0 in
                 Array.iteri (fun i ai -> lhs := !lhs +. (ai *. solution.(i))) a;
                 !lhs <= b +. tol)
               rows
          &&
          let obj = ref 0.0 in
          Array.iteri (fun i c -> obj := !obj +. (c *. solution.(i))) objective;
          Helpers.close_enough ~tol:1e-6 !obj value)

(* ---------- UFPP LP ---------- *)

let ufpp_lp_upper_bounds_exact =
  Helpers.seed_property ~count:40 "LP >= exact UFPP >= exact SAP" (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      let lp = Lp.Ufpp_lp.upper_bound path tasks in
      let ufpp = Ufpp.Exact_bb.value path tasks in
      let sap = Exact.Sap_brute.value path tasks in
      lp >= ufpp -. 1e-6 && ufpp >= sap -. 1e-9)

let ufpp_lp_saturates_single_edge () =
  (* One edge, two tasks: the LP is a fractional knapsack. *)
  let path = Path.create [| 10 |] in
  let mk id d w = Task.make ~id ~first_edge:0 ~last_edge:0 ~demand:d ~weight:w in
  let r = Lp.Ufpp_lp.solve path [ mk 0 6 6.0; mk 1 6 3.0 ] in
  (* x0 = 1, x1 = 4/6. *)
  Alcotest.(check bool) "value 8" true (Helpers.close_enough r.Lp.Ufpp_lp.value 8.0)

let ufpp_lp_unfit_task_zeroed () =
  let path = Path.create [| 4; 2 |] in
  let t = Task.make ~id:0 ~first_edge:0 ~last_edge:1 ~demand:3 ~weight:5.0 in
  let r = Lp.Ufpp_lp.solve path [ t ] in
  Alcotest.(check bool) "zero value" true (Helpers.close_enough r.Lp.Ufpp_lp.value 0.0);
  Alcotest.(check bool) "zero x" true (Helpers.close_enough r.Lp.Ufpp_lp.solution.(0) 0.0)

let ufpp_lp_scaled () =
  let path = Path.create [| 10 |] in
  let t = Task.make ~id:0 ~first_edge:0 ~last_edge:0 ~demand:10 ~weight:1.0 in
  let full = Lp.Ufpp_lp.solve path [ t ] in
  let half = Lp.Ufpp_lp.solve_scaled path ~scale:0.5 [ t ] in
  Alcotest.(check bool) "full takes task" true
    (Helpers.close_enough full.Lp.Ufpp_lp.value 1.0);
  Alcotest.(check bool) "half rejects (demand > scaled bottleneck)" true
    (Helpers.close_enough half.Lp.Ufpp_lp.value 0.0)

let ufpp_lp_integral_when_disjoint () =
  (* Disjoint tasks: LP optimum equals total weight. *)
  let path = Path.create [| 4; 4; 4; 4 |] in
  let mk id first last = Task.make ~id ~first_edge:first ~last_edge:last ~demand:3 ~weight:2.0 in
  let r = Lp.Ufpp_lp.solve path [ mk 0 0 1; mk 1 2 3 ] in
  Alcotest.(check bool) "value 4" true (Helpers.close_enough r.Lp.Ufpp_lp.value 4.0)

let () =
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          case "known 2d" simplex_known_2d;
          case "degenerate" simplex_degenerate;
          case "unbounded" simplex_unbounded;
          case "negative rhs" simplex_rejects_negative_rhs;
          simplex_solution_feasible;
        ] );
      ( "ufpp_lp",
        [
          ufpp_lp_upper_bounds_exact;
          case "fractional knapsack" ufpp_lp_saturates_single_edge;
          case "unfit task zeroed" ufpp_lp_unfit_task_zeroed;
          case "scaled" ufpp_lp_scaled;
          case "integral disjoint" ufpp_lp_integral_when_disjoint;
        ] );
    ]
