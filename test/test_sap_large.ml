module Task = Core.Task
module Path = Core.Path

let case = Helpers.case

let large_instance ~k ?(max_tasks = 9) seed =
  Helpers.tiny_ratio_instance ~max_tasks ~lo:(1.0 /. float_of_int k) ~hi:1.0 seed

let solve_feasible =
  Helpers.seed_property ~count:40 "large solver output feasible" (fun seed ->
      let path, tasks = large_instance ~k:2 seed in
      let sol = Sap.Large.solve path tasks in
      Result.is_ok (Core.Checker.sap_feasible path sol)
      && Core.Checker.subset_of (Core.Solution.sap_tasks sol) tasks)

let solve_ratio_k2 =
  (* Theorem 3 with k = 2: ratio at most 3 against the exact optimum. *)
  Helpers.seed_property ~count:25 "1/2-large ratio <= 3" (fun seed ->
      let path, tasks = large_instance ~k:2 ~max_tasks:8 seed in
      let sol = Sap.Large.solve path tasks in
      let opt = Exact.Sap_brute.value path tasks in
      opt <= 1e-9 || Core.Solution.sap_weight sol >= (opt /. 3.0) -. 1e-9)

let solve_ratio_k3 =
  (* Theorem 3 with k = 3: ratio at most 5. *)
  Helpers.seed_property ~count:25 "1/3-large ratio <= 5" (fun seed ->
      let path, tasks = large_instance ~k:3 ~max_tasks:8 seed in
      let sol = Sap.Large.solve path tasks in
      let opt = Exact.Sap_brute.value path tasks in
      opt <= 1e-9 || Core.Solution.sap_weight sol >= (opt /. 5.0) -. 1e-9)

let degeneracy_bound_lemma17 =
  (* Lemma 17: the rectangle graph of any 1/2-large *solution* is
     2k-2 = 2-degenerate.  We test on exact optimal solutions. *)
  Helpers.seed_property ~count:25 "solution rectangle graph is (2k-2)-degenerate"
    (fun seed ->
      let path, tasks = large_instance ~k:2 ~max_tasks:8 seed in
      let opt = Exact.Sap_brute.solve path tasks in
      Sap.Large.solution_degeneracy path opt <= 2)

let degeneracy_bound_k3 =
  Helpers.seed_property ~count:25 "1/3-large solutions are 4-degenerate"
    (fun seed ->
      let path, tasks = large_instance ~k:3 ~max_tasks:8 seed in
      let opt = Exact.Sap_brute.solve path tasks in
      Sap.Large.solution_degeneracy path opt <= 4)

let coloring_bound_below_mwis =
  (* The analysis' constructive bound can never beat the exact MWIS. *)
  Helpers.seed_property ~count:30 "coloring class <= exact MWIS weight"
    (fun seed ->
      let path, tasks = large_instance ~k:2 seed in
      let cls = Sap.Large.coloring_lower_bound path tasks in
      let sol = Sap.Large.solve path tasks in
      cls <= Core.Solution.sap_weight sol +. 1e-9)

let solve_drops_unfit () =
  let path = Path.create [| 4 |] in
  let t_ok = Task.make ~id:0 ~first_edge:0 ~last_edge:0 ~demand:3 ~weight:1.0 in
  let t_big = Task.make ~id:1 ~first_edge:0 ~last_edge:0 ~demand:5 ~weight:9.0 in
  let sol = Sap.Large.solve path [ t_ok; t_big ] in
  Alcotest.(check int) "keeps only the fitting task" 1 (List.length sol)

let solve_single_edge_picks_heaviest () =
  (* On one edge, 1/2-large tasks pairwise exclude: MWIS = heaviest. *)
  let path = Path.create [| 10 |] in
  let mk id d w = Task.make ~id ~first_edge:0 ~last_edge:0 ~demand:d ~weight:w in
  let sol = Sap.Large.solve path [ mk 0 6 3.0; mk 1 7 5.0; mk 2 6 4.0 ] in
  Alcotest.(check bool) "weight 5" true
    (Helpers.close_enough (Core.Solution.sap_weight sol) 5.0)

let fig8_mwis () =
  (* On the C5 witness the exact MWIS takes two of five unit weights. *)
  let path, sol = Lazy.force Gen.Paper_figures.fig8 in
  let tasks = Core.Solution.sap_tasks sol in
  let mwis = Sap.Large.solve path tasks in
  Alcotest.(check bool) "MWIS weight 2 on C5" true
    (Helpers.close_enough (Core.Solution.sap_weight mwis) 2.0)

let () =
  Alcotest.run "sap_large"
    [
      ( "solve",
        [
          solve_feasible;
          solve_ratio_k2;
          solve_ratio_k3;
          case "drops unfit" solve_drops_unfit;
          case "single edge" solve_single_edge_picks_heaviest;
          case "fig8 mwis" fig8_mwis;
        ] );
      ( "analysis",
        [ degeneracy_bound_lemma17; degeneracy_bound_k3; coloring_bound_below_mwis ] );
    ]
