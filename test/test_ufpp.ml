module Task = Core.Task
module Path = Core.Path

let case = Helpers.case

let mk ?(w = 1.0) id first last d =
  Task.make ~id ~first_edge:first ~last_edge:last ~demand:d ~weight:w

(* ---------- Interval_mwis ---------- *)

let interval_brute ts =
  let a = Array.of_list ts in
  let n = Array.length a in
  let best = ref 0.0 in
  for mask = 0 to (1 lsl n) - 1 do
    let ok = ref true and w = ref 0.0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        w := !w +. a.(i).Task.weight;
        for j = i + 1 to n - 1 do
          if mask land (1 lsl j) <> 0 && Task.overlaps a.(i) a.(j) then ok := false
        done
      end
    done;
    if !ok && !w > !best then best := !w
  done;
  !best

let interval_mwis_exact =
  Helpers.seed_property ~count:60 "interval MWIS = brute force" (fun seed ->
      let _, tasks = Helpers.tiny_instance ~max_tasks:10 seed in
      let sol = Ufpp.Interval_mwis.solve tasks in
      let disjoint =
        let rec pairwise = function
          | [] -> true
          | x :: rest ->
              List.for_all (fun y -> not (Task.overlaps x y)) rest && pairwise rest
        in
        pairwise sol
      in
      disjoint
      && Helpers.close_enough (Task.weight_of sol) (interval_brute tasks))

let interval_mwis_known () =
  let sol =
    Ufpp.Interval_mwis.solve [ mk ~w:3.0 0 0 2 1; mk ~w:2.0 1 3 4 1; mk ~w:4.0 2 1 3 1 ]
  in
  (* 3 + 2 = 5 beats 4. *)
  Alcotest.(check bool) "weight 5" true (Helpers.close_enough (Task.weight_of sol) 5.0)

(* ---------- Local_ratio_u ---------- *)

let local_ratio_feasible_and_bounded =
  Helpers.seed_property ~count:50 "uniform 3-approx: feasible, ratio <= 3"
    (fun seed ->
      let g = Util.Prng.create seed in
      let edges = 3 + Util.Prng.int g 5 in
      let capacity = 4 + Util.Prng.int g 12 in
      let path = Path.uniform ~edges ~capacity in
      let n = 2 + Util.Prng.int g 8 in
      let tasks = Gen.Workloads.mixed_tasks ~prng:g ~path ~n () in
      let sol = Ufpp.Local_ratio_u.solve path tasks in
      let opt = Ufpp.Exact_bb.value path tasks in
      Result.is_ok (Core.Checker.ufpp_feasible path sol)
      && Core.Checker.subset_of sol tasks
      && (opt <= 1e-9 || Task.weight_of sol >= (opt /. 3.0) -. 1e-9))

let local_ratio_narrow_2_approx =
  Helpers.seed_property ~count:50 "narrow local ratio: ratio <= 2" (fun seed ->
      let g = Util.Prng.create seed in
      let edges = 3 + Util.Prng.int g 5 in
      let capacity = 8 + (2 * Util.Prng.int g 6) in
      let path = Path.uniform ~edges ~capacity in
      let n = 2 + Util.Prng.int g 8 in
      let tasks = Gen.Workloads.ratio_tasks ~prng:g ~path ~n ~lo:0.0 ~hi:0.5 () in
      let sol = Ufpp.Local_ratio_u.solve_narrow path tasks in
      let opt = Ufpp.Exact_bb.value path tasks in
      Result.is_ok (Core.Checker.ufpp_feasible path sol)
      && (opt <= 1e-9 || Task.weight_of sol >= (opt /. 2.0) -. 1e-9))

let local_ratio_rejects_non_uniform () =
  let path = Path.create [| 4; 5 |] in
  Alcotest.check_raises "non uniform"
    (Invalid_argument "Local_ratio_u: capacities not uniform") (fun () ->
      ignore (Ufpp.Local_ratio_u.solve path [ mk 0 0 0 1 ]))

(* ---------- Strip_local_ratio ---------- *)

let strip_band_instance seed =
  let g = Util.Prng.create seed in
  let b = 16 * (1 + Util.Prng.int g 3) in
  let edges = 3 + Util.Prng.int g 5 in
  let caps = Array.init edges (fun _ -> b + Util.Prng.int g b) in
  let path = Path.create caps in
  let n = 3 + Util.Prng.int g 9 in
  let tasks = Gen.Workloads.small_tasks ~prng:g ~path ~n ~delta:0.25 () in
  (b, path, tasks)

let strip_half_packable =
  Helpers.seed_property ~count:50 "Strip returns B/2-packable solutions"
    (fun seed ->
      let b, path, tasks = strip_band_instance seed in
      let sol = Ufpp.Strip_local_ratio.solve ~b path tasks in
      Core.Solution.ufpp_is_packable path ~bound:(b / 2) sol
      && Core.Checker.subset_of sol tasks)

let strip_ratio_bound =
  (* Guarantee: w(S) >= OPT_SAP / 5 (up to the delta slack), where the
     comparison is against the *SAP* optimum of the band. *)
  Helpers.seed_property ~count:30 "Strip ratio <= 5 vs SAP optimum" (fun seed ->
      let b, path, tasks = strip_band_instance seed in
      let tasks = List.filteri (fun i _ -> i < 8) tasks in
      let sol = Ufpp.Strip_local_ratio.solve ~b path tasks in
      let opt = Exact.Sap_brute.value path tasks in
      opt <= 1e-9 || Task.weight_of sol >= (opt /. 5.0) -. 1e-9)

let strip_rejects_out_of_band () =
  let path = Path.create [| 8; 8 |] in
  Alcotest.check_raises "bottleneck below B"
    (Invalid_argument "Strip_local_ratio.solve: bottleneck outside [B, 2B)")
    (fun () -> ignore (Ufpp.Strip_local_ratio.solve ~b:16 path [ mk 0 0 1 1 ]))

(* ---------- Lp_rounding ---------- *)

let rounding_within_budget =
  Helpers.seed_property ~count:50 "rounding respects the budget" (fun seed ->
      let g = Util.Prng.create seed in
      let path, tasks = Helpers.tiny_instance ~max_tasks:12 seed in
      let lp = Lp.Ufpp_lp.solve path tasks in
      let fx =
        Array.to_list lp.Lp.Ufpp_lp.tasks
        |> List.mapi (fun i j -> (j, 0.25 *. lp.Lp.Ufpp_lp.solution.(i)))
      in
      let budget = 1 + Util.Prng.int g 10 in
      let sol = Ufpp.Lp_rounding.round ~budget ~trials:8 ~prng:g path fx in
      Core.Solution.ufpp_is_packable path ~bound:budget sol)

let rounding_takes_integral_lp () =
  (* When the LP solution is integral and fits the budget, rounding keeps
     everything. *)
  let path = Path.create [| 10; 10 |] in
  let ts = [ mk ~w:5.0 0 0 0 2; mk ~w:5.0 1 1 1 2 ] in
  let g = Util.Prng.create 5 in
  let fx = List.map (fun t -> (t, 1.0)) ts in
  let sol = Ufpp.Lp_rounding.round ~budget:4 ~trials:4 ~prng:g path fx in
  Alcotest.(check int) "both kept" 2 (List.length sol)

let fractional_weight () =
  let fx = [ (mk ~w:4.0 0 0 0 1, 0.5); (mk ~w:2.0 1 0 0 1, 1.0) ] in
  Alcotest.(check bool) "weighted sum" true
    (Helpers.close_enough (Ufpp.Lp_rounding.fractional_weight fx) 4.0)

(* ---------- Exact_bb / Greedy ---------- *)

let ufpp_brute ts path =
  let a = Array.of_list ts in
  let n = Array.length a in
  let best = ref 0.0 in
  for mask = 0 to (1 lsl n) - 1 do
    let chosen = List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list a) in
    if Result.is_ok (Core.Checker.ufpp_feasible path chosen) then begin
      let w = Task.weight_of chosen in
      if w > !best then best := w
    end
  done;
  !best

let exact_bb_matches_enumeration =
  Helpers.seed_property ~count:40 "B&B = subset enumeration" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:10 seed in
      let sol = Ufpp.Exact_bb.solve path tasks in
      Result.is_ok (Core.Checker.ufpp_feasible path sol)
      && Helpers.close_enough (Task.weight_of sol) (ufpp_brute tasks path))

let greedy_feasible =
  Helpers.seed_property "greedy feasible subset" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:15 seed in
      let sol = Ufpp.Greedy.solve path tasks in
      Result.is_ok (Core.Checker.ufpp_feasible path sol)
      && Core.Checker.subset_of sol tasks)

(* ---------- Band_dp ---------- *)

let band_dp_matches_bb =
  Helpers.seed_property ~count:40 "band DP = branch and bound" (fun seed ->
      let path, tasks = Helpers.tiny_ratio_instance ~max_tasks:10 ~lo:0.25 ~hi:1.0 seed in
      let r = Ufpp.Band_dp.solve path tasks in
      r.Ufpp.Band_dp.exact
      && Result.is_ok (Core.Checker.ufpp_feasible path r.Ufpp.Band_dp.solution)
      && Helpers.close_enough
           (Task.weight_of r.Ufpp.Band_dp.solution)
           (Ufpp.Exact_bb.value path tasks))

let band_dp_mixed_matches_bb =
  Helpers.seed_property ~count:30 "band DP exact on mixed tiny instances"
    (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:9 seed in
      let r = Ufpp.Band_dp.solve path tasks in
      (not r.Ufpp.Band_dp.exact)
      || Helpers.close_enough
           (Task.weight_of r.Ufpp.Band_dp.solution)
           (Ufpp.Exact_bb.value path tasks))

let band_dp_respects_cap =
  Helpers.seed_property ~count:30 "band DP respects the clip cap" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:10 seed in
      let cap = max 2 (Path.max_capacity path / 2) in
      let r = Ufpp.Band_dp.solve ~cap path tasks in
      Core.Solution.ufpp_is_packable (Path.clip path cap) ~bound:cap
        r.Ufpp.Band_dp.solution
      && Result.is_ok
           (Core.Checker.ufpp_feasible (Path.clip path cap) r.Ufpp.Band_dp.solution))

(* ---------- Composite ---------- *)

let composite_feasible =
  Helpers.seed_property ~count:40 "UFPP composite feasible + subset" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:14 seed in
      let sol = Ufpp.Composite.solve path tasks in
      Result.is_ok (Core.Checker.ufpp_feasible path sol)
      && Core.Checker.subset_of sol tasks)

let composite_parts_feasible =
  Helpers.seed_property ~count:25 "UFPP composite parts feasible" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:14 seed in
      let r = Ufpp.Composite.solve_report path tasks in
      Result.is_ok (Core.Checker.ufpp_feasible path r.Ufpp.Composite.small_solution)
      && Result.is_ok (Core.Checker.ufpp_feasible path r.Ufpp.Composite.medium_solution)
      && Result.is_ok (Core.Checker.ufpp_feasible path r.Ufpp.Composite.large_solution))

let composite_reasonable_ratio =
  (* No proved constant for the engineering rendition; sanity-check a loose
     measured envelope against the exact optimum. *)
  Helpers.seed_property ~count:20 "UFPP composite within 8x of exact" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:9 seed in
      let sol = Ufpp.Composite.solve path tasks in
      let opt = Ufpp.Exact_bb.value path tasks in
      opt <= 1e-9 || Task.weight_of sol >= (opt /. 8.0) -. 1e-9)

let round_capacities_within_caps =
  Helpers.seed_property ~count:30 "capacity rounding respects every edge"
    (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:12 seed in
      let lp = Lp.Ufpp_lp.solve path tasks in
      let fx =
        Array.to_list lp.Lp.Ufpp_lp.tasks
        |> List.mapi (fun i j -> (j, lp.Lp.Ufpp_lp.solution.(i)))
      in
      let sol =
        Ufpp.Lp_rounding.round_capacities ~trials:6 ~prng:(Util.Prng.create seed)
          path fx
      in
      Result.is_ok (Core.Checker.ufpp_feasible path sol))

let band_dp_state_cap_flag () =
  let path = Path.uniform ~edges:4 ~capacity:30 in
  let prng = Util.Prng.create 5 in
  let tasks = Gen.Workloads.mixed_tasks ~prng ~path ~n:12 () in
  let r = Ufpp.Band_dp.solve ~max_states:1 path tasks in
  Alcotest.(check bool) "flag tripped" false r.Ufpp.Band_dp.exact

let () =
  Alcotest.run "ufpp"
    [
      ("interval_mwis", [ interval_mwis_exact; case "known" interval_mwis_known ]);
      ( "local_ratio",
        [
          local_ratio_feasible_and_bounded;
          local_ratio_narrow_2_approx;
          case "non uniform rejected" local_ratio_rejects_non_uniform;
        ] );
      ( "strip",
        [
          strip_half_packable;
          strip_ratio_bound;
          case "out of band rejected" strip_rejects_out_of_band;
        ] );
      ( "lp_rounding",
        [
          rounding_within_budget;
          case "integral kept" rounding_takes_integral_lp;
          case "fractional weight" fractional_weight;
        ] );
      ("exact_bb", [ exact_bb_matches_enumeration; greedy_feasible ]);
      ( "band_dp",
        [
          band_dp_matches_bb;
          band_dp_mixed_matches_bb;
          band_dp_respects_cap;
          case "state cap flag" band_dp_state_cap_flag;
        ] );
      ( "composite",
        [
          composite_feasible;
          composite_parts_feasible;
          composite_reasonable_ratio;
          round_capacities_within_caps;
        ] );
    ]
