(* Unit tests for the observability layer: registry semantics, the
   zero-cost disabled path, atomic updates under Parallel.map domain
   fan-out, span trees, and the hand-rolled JSON emitter.

   Metrics and tracing are process-wide, so every case starts and ends
   from a clean disabled state; metric names are unique per case to keep
   cases independent of execution order. *)

let case = Helpers.case

let clean () =
  Obs.Report.disable_all ();
  Obs.Report.reset_all ()

let counter_value name =
  List.assoc name (Obs.Metrics.snapshot ()).Obs.Metrics.counters

let gauge_value name = List.assoc name (Obs.Metrics.snapshot ()).Obs.Metrics.gauges

let histogram_summary name =
  List.assoc name (Obs.Metrics.snapshot ()).Obs.Metrics.histograms

(* ---------- Metrics ---------- *)

let metrics_disabled_noop () =
  clean ();
  let c = Obs.Metrics.counter "t.noop.counter" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 10;
  Alcotest.(check int) "counter untouched" 0 (Obs.Metrics.counter_value c);
  let g = Obs.Metrics.gauge "t.noop.gauge" in
  Obs.Metrics.set g 3.5;
  Alcotest.(check bool) "gauge untouched" true (Obs.Metrics.gauge_value g = 0.0);
  let h = Obs.Metrics.histogram "t.noop.hist" in
  Obs.Metrics.observe h 1.0;
  Alcotest.(check int) "histogram untouched" 0
    (histogram_summary "t.noop.hist").Obs.Metrics.count;
  Alcotest.(check bool) "not enabled" false (Obs.Metrics.enabled ())

let metrics_counter_roundtrip () =
  clean ();
  Obs.Metrics.enable ();
  let c = Obs.Metrics.counter "t.rt.counter" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr c;
  Obs.Metrics.add c 5;
  Alcotest.(check int) "handle value" 7 (Obs.Metrics.counter_value c);
  (* Registering the same name again must return the same cell. *)
  let c' = Obs.Metrics.counter "t.rt.counter" in
  Obs.Metrics.incr c';
  Alcotest.(check int) "same cell" 8 (Obs.Metrics.counter_value c);
  Alcotest.(check int) "snapshot agrees" 8 (counter_value "t.rt.counter");
  clean ()

let metrics_gauge_and_histogram () =
  clean ();
  Obs.Metrics.enable ();
  let g = Obs.Metrics.gauge "t.gh.gauge" in
  Obs.Metrics.set g 1.0;
  Obs.Metrics.set g 2.5;
  Alcotest.(check bool) "last write wins" true (gauge_value "t.gh.gauge" = 2.5);
  let h = Obs.Metrics.histogram "t.gh.hist" in
  Obs.Metrics.observe h 3.0;
  Obs.Metrics.observe h 1.0;
  Obs.Metrics.observe h 2.0;
  let s = histogram_summary "t.gh.hist" in
  Alcotest.(check int) "count" 3 s.Obs.Metrics.count;
  Alcotest.(check bool) "sum" true (Helpers.close_enough s.Obs.Metrics.sum 6.0);
  Alcotest.(check bool) "min" true (s.Obs.Metrics.min = 1.0);
  Alcotest.(check bool) "max" true (s.Obs.Metrics.max = 3.0);
  clean ()

let metrics_parallel_counters () =
  (* The whole point of the Atomic cells: increments from the domains
     spawned by Parallel.map must not lose updates. *)
  clean ();
  Obs.Metrics.enable ();
  let c = Obs.Metrics.counter "t.par.counter" in
  let h = Obs.Metrics.histogram "t.par.hist" in
  let xs = List.init 400 Fun.id in
  let ys =
    Util.Parallel.map ~jobs:4
      (fun i ->
        Obs.Metrics.incr c;
        Obs.Metrics.observe h 1.0;
        i)
      xs
  in
  Alcotest.(check (list int)) "map result intact" xs ys;
  Alcotest.(check int) "no lost counter updates" 400 (Obs.Metrics.counter_value c);
  let s = histogram_summary "t.par.hist" in
  Alcotest.(check int) "no lost observations" 400 s.Obs.Metrics.count;
  Alcotest.(check bool) "sum exact" true (Helpers.close_enough s.Obs.Metrics.sum 400.0);
  clean ()

let metrics_reset_keeps_names () =
  clean ();
  Obs.Metrics.enable ();
  let c = Obs.Metrics.counter "t.reset.counter" in
  Obs.Metrics.add c 9;
  Obs.Metrics.reset ();
  Alcotest.(check int) "zeroed" 0 (Obs.Metrics.counter_value c);
  Alcotest.(check bool) "still registered" true
    (List.mem_assoc "t.reset.counter" (Obs.Metrics.snapshot ()).Obs.Metrics.counters);
  clean ()

let metrics_time_passthrough () =
  clean ();
  let h = Obs.Metrics.histogram "t.time.hist" in
  Alcotest.(check int) "disabled returns value" 41
    (Obs.Metrics.time h (fun () -> 41));
  Alcotest.(check int) "disabled records nothing" 0
    (histogram_summary "t.time.hist").Obs.Metrics.count;
  Obs.Metrics.enable ();
  Alcotest.(check int) "enabled returns value" 42 (Obs.Metrics.time h (fun () -> 42));
  let s = histogram_summary "t.time.hist" in
  Alcotest.(check int) "enabled records one duration" 1 s.Obs.Metrics.count;
  Alcotest.(check bool) "duration non-negative" true (s.Obs.Metrics.sum >= 0.0);
  clean ()

(* ---------- Trace ---------- *)

let trace_disabled_passthrough () =
  clean ();
  Alcotest.(check int) "value through" 7 (Obs.Trace.with_span "t.off" (fun () -> 7));
  Alcotest.(check int) "no spans recorded" 0 (List.length (Obs.Trace.roots ()))

let trace_nesting_and_attrs () =
  clean ();
  Obs.Trace.enable ();
  let v =
    Obs.Trace.with_span ~attrs:[ ("k", "outer") ] "outer" (fun () ->
        let x = Obs.Trace.with_span "inner" (fun () -> 21) in
        Obs.Trace.add_attr "result" (string_of_int x);
        2 * x)
  in
  Alcotest.(check int) "value through" 42 v;
  (match Obs.Trace.roots () with
  | [ root ] ->
      Alcotest.(check string) "root name" "outer" root.Obs.Trace.name;
      Alcotest.(check bool) "duration non-negative" true (root.Obs.Trace.duration >= 0.0);
      Alcotest.(check (list (pair string string)))
        "attrs in order"
        [ ("k", "outer"); ("result", "21") ]
        root.Obs.Trace.attrs;
      (match root.Obs.Trace.children with
      | [ child ] ->
          Alcotest.(check string) "child name" "inner" child.Obs.Trace.name;
          Alcotest.(check (list (pair string string))) "child attrs" []
            child.Obs.Trace.attrs
      | l -> Alcotest.failf "expected one child, got %d" (List.length l))
  | l -> Alcotest.failf "expected one root, got %d" (List.length l));
  clean ()

let trace_records_on_raise () =
  clean ();
  Obs.Trace.enable ();
  (try Obs.Trace.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check (list string)) "span survived the raise" [ "boom" ]
    (List.map (fun s -> s.Obs.Trace.name) (Obs.Trace.roots ()));
  clean ()

let trace_sequential_roots () =
  clean ();
  Obs.Trace.enable ();
  Obs.Trace.with_span "first" (fun () -> ());
  Obs.Trace.with_span "second" (fun () -> ());
  Alcotest.(check (list string)) "oldest first" [ "first"; "second" ]
    (List.map (fun s -> s.Obs.Trace.name) (Obs.Trace.roots ()));
  clean ()

(* ---------- Json ---------- *)

let json_scalars () =
  Alcotest.(check string) "null" "null" (Obs.Json.to_string Obs.Json.Null);
  Alcotest.(check string) "bool" "true" (Obs.Json.to_string (Obs.Json.Bool true));
  Alcotest.(check string) "int" "-3" (Obs.Json.to_string (Obs.Json.Int (-3)));
  Alcotest.(check string) "float" "2.5" (Obs.Json.to_string (Obs.Json.Float 2.5));
  Alcotest.(check string) "integral float" "4.0"
    (Obs.Json.to_string (Obs.Json.Float 4.0));
  Alcotest.(check string) "nan is null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.infinity))

let json_string_escaping () =
  Alcotest.(check string) "quotes/backslash/newline"
    {|"a\"b\\c\nd"|}
    (Obs.Json.to_string (Obs.Json.String "a\"b\\c\nd"));
  Alcotest.(check string) "control char" {|"\u0001"|}
    (Obs.Json.to_string (Obs.Json.String "\001"))

let json_compound () =
  let v =
    Obs.Json.Obj
      [
        ("xs", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Int 2 ]);
        ("empty", Obs.Json.Obj []);
      ]
  in
  Alcotest.(check string) "compact" {|{"xs":[1,2],"empty":{}}|}
    (Obs.Json.to_string v);
  (* The pretty renderer must stay parseable and keep the same tokens. *)
  let pretty = Obs.Json.to_string_pretty v in
  let strip s =
    String.to_seq s
    |> Seq.filter (fun c -> c <> ' ' && c <> '\n')
    |> String.of_seq
  in
  Alcotest.(check string) "pretty has same tokens" (Obs.Json.to_string v)
    (strip pretty)

(* ---------- Report ---------- *)

let report_schema_and_extras () =
  clean ();
  Obs.Report.enable_all ();
  let c = Obs.Metrics.counter "t.report.counter" in
  Obs.Metrics.incr c;
  Obs.Trace.with_span "t.report.span" (fun () -> ());
  let report = Obs.Report.build ~extra:[ ("command", Obs.Json.String "test") ] () in
  let s = Obs.Json.to_string report in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun sub -> Alcotest.(check bool) (sub ^ " present") true (contains sub))
    [
      {|"schema":"sap-stats v1"|};
      {|"command":"test"|};
      {|"counters"|};
      {|"gauges"|};
      {|"histograms"|};
      {|"t.report.counter":1|};
      {|"name":"t.report.span"|};
    ];
  clean ()

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          case "disabled is a no-op" metrics_disabled_noop;
          case "counter roundtrip" metrics_counter_roundtrip;
          case "gauge and histogram" metrics_gauge_and_histogram;
          case "parallel counters" metrics_parallel_counters;
          case "reset keeps names" metrics_reset_keeps_names;
          case "time passthrough" metrics_time_passthrough;
        ] );
      ( "trace",
        [
          case "disabled passthrough" trace_disabled_passthrough;
          case "nesting and attrs" trace_nesting_and_attrs;
          case "records on raise" trace_records_on_raise;
          case "sequential roots" trace_sequential_roots;
        ] );
      ( "json",
        [
          case "scalars" json_scalars;
          case "string escaping" json_string_escaping;
          case "compound" json_compound;
        ] );
      ( "report", [ case "schema and extras" report_schema_and_extras ] );
    ]
