(* Unit tests for the observability layer: registry semantics, the
   zero-cost disabled path, atomic updates under Parallel.map domain
   fan-out, span trees (with GC attribution and domain ids), the
   hand-rolled JSON emitter/parser, the Chrome-trace exporter, the
   report differ behind bench-diff, and atomic report writes.

   Metrics and tracing are process-wide, so every case starts and ends
   from a clean disabled state; metric names are unique per case to keep
   cases independent of execution order. *)

let case = Helpers.case

let clean () =
  Obs.Report.disable_all ();
  Obs.Report.reset_all ()

let counter_value name =
  List.assoc name (Obs.Metrics.snapshot ()).Obs.Metrics.counters

let gauge_value name = List.assoc name (Obs.Metrics.snapshot ()).Obs.Metrics.gauges

let histogram_summary name =
  List.assoc name (Obs.Metrics.snapshot ()).Obs.Metrics.histograms

(* ---------- Metrics ---------- *)

let metrics_disabled_noop () =
  clean ();
  let c = Obs.Metrics.counter "t.noop.counter" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 10;
  Alcotest.(check int) "counter untouched" 0 (Obs.Metrics.counter_value c);
  let g = Obs.Metrics.gauge "t.noop.gauge" in
  Obs.Metrics.set g 3.5;
  Alcotest.(check bool) "gauge untouched" true (Obs.Metrics.gauge_value g = 0.0);
  let h = Obs.Metrics.histogram "t.noop.hist" in
  Obs.Metrics.observe h 1.0;
  Alcotest.(check int) "histogram untouched" 0
    (histogram_summary "t.noop.hist").Obs.Metrics.count;
  Alcotest.(check bool) "not enabled" false (Obs.Metrics.enabled ())

let metrics_counter_roundtrip () =
  clean ();
  Obs.Metrics.enable ();
  let c = Obs.Metrics.counter "t.rt.counter" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr c;
  Obs.Metrics.add c 5;
  Alcotest.(check int) "handle value" 7 (Obs.Metrics.counter_value c);
  (* Registering the same name again must return the same cell. *)
  let c' = Obs.Metrics.counter "t.rt.counter" in
  Obs.Metrics.incr c';
  Alcotest.(check int) "same cell" 8 (Obs.Metrics.counter_value c);
  Alcotest.(check int) "snapshot agrees" 8 (counter_value "t.rt.counter");
  clean ()

let metrics_gauge_and_histogram () =
  clean ();
  Obs.Metrics.enable ();
  let g = Obs.Metrics.gauge "t.gh.gauge" in
  Obs.Metrics.set g 1.0;
  Obs.Metrics.set g 2.5;
  Alcotest.(check bool) "last write wins" true (gauge_value "t.gh.gauge" = 2.5);
  let h = Obs.Metrics.histogram "t.gh.hist" in
  Obs.Metrics.observe h 3.0;
  Obs.Metrics.observe h 1.0;
  Obs.Metrics.observe h 2.0;
  let s = histogram_summary "t.gh.hist" in
  Alcotest.(check int) "count" 3 s.Obs.Metrics.count;
  Alcotest.(check bool) "sum" true (Helpers.close_enough s.Obs.Metrics.sum 6.0);
  Alcotest.(check bool) "min" true (s.Obs.Metrics.min = 1.0);
  Alcotest.(check bool) "max" true (s.Obs.Metrics.max = 3.0);
  clean ()

let metrics_parallel_counters () =
  (* The whole point of the Atomic cells: increments from the domains
     spawned by Parallel.map must not lose updates. *)
  clean ();
  Obs.Metrics.enable ();
  let c = Obs.Metrics.counter "t.par.counter" in
  let h = Obs.Metrics.histogram "t.par.hist" in
  let xs = List.init 400 Fun.id in
  let ys =
    Util.Parallel.map ~jobs:4
      (fun i ->
        Obs.Metrics.incr c;
        Obs.Metrics.observe h 1.0;
        i)
      xs
  in
  Alcotest.(check (list int)) "map result intact" xs ys;
  Alcotest.(check int) "no lost counter updates" 400 (Obs.Metrics.counter_value c);
  let s = histogram_summary "t.par.hist" in
  Alcotest.(check int) "no lost observations" 400 s.Obs.Metrics.count;
  Alcotest.(check bool) "sum exact" true (Helpers.close_enough s.Obs.Metrics.sum 400.0);
  clean ()

let metrics_reset_keeps_names () =
  clean ();
  Obs.Metrics.enable ();
  let c = Obs.Metrics.counter "t.reset.counter" in
  Obs.Metrics.add c 9;
  Obs.Metrics.reset ();
  Alcotest.(check int) "zeroed" 0 (Obs.Metrics.counter_value c);
  Alcotest.(check bool) "still registered" true
    (List.mem_assoc "t.reset.counter" (Obs.Metrics.snapshot ()).Obs.Metrics.counters);
  clean ()

let metrics_time_passthrough () =
  clean ();
  let h = Obs.Metrics.histogram "t.time.hist" in
  Alcotest.(check int) "disabled returns value" 41
    (Obs.Metrics.time h (fun () -> 41));
  Alcotest.(check int) "disabled records nothing" 0
    (histogram_summary "t.time.hist").Obs.Metrics.count;
  Obs.Metrics.enable ();
  Alcotest.(check int) "enabled returns value" 42 (Obs.Metrics.time h (fun () -> 42));
  let s = histogram_summary "t.time.hist" in
  Alcotest.(check int) "enabled records one duration" 1 s.Obs.Metrics.count;
  Alcotest.(check bool) "duration non-negative" true (s.Obs.Metrics.sum >= 0.0);
  clean ()

(* ---------- Trace ---------- *)

let trace_disabled_passthrough () =
  clean ();
  Alcotest.(check int) "value through" 7 (Obs.Trace.with_span "t.off" (fun () -> 7));
  Alcotest.(check int) "no spans recorded" 0 (List.length (Obs.Trace.roots ()))

let trace_nesting_and_attrs () =
  clean ();
  Obs.Trace.enable ();
  let v =
    Obs.Trace.with_span ~attrs:[ ("k", "outer") ] "outer" (fun () ->
        let x = Obs.Trace.with_span "inner" (fun () -> 21) in
        Obs.Trace.add_attr "result" (string_of_int x);
        2 * x)
  in
  Alcotest.(check int) "value through" 42 v;
  (match Obs.Trace.roots () with
  | [ root ] ->
      Alcotest.(check string) "root name" "outer" root.Obs.Trace.name;
      Alcotest.(check bool) "duration non-negative" true (root.Obs.Trace.duration >= 0.0);
      Alcotest.(check (list (pair string string)))
        "attrs in order"
        [ ("k", "outer"); ("result", "21") ]
        root.Obs.Trace.attrs;
      (match root.Obs.Trace.children with
      | [ child ] ->
          Alcotest.(check string) "child name" "inner" child.Obs.Trace.name;
          Alcotest.(check (list (pair string string))) "child attrs" []
            child.Obs.Trace.attrs
      | l -> Alcotest.failf "expected one child, got %d" (List.length l))
  | l -> Alcotest.failf "expected one root, got %d" (List.length l));
  clean ()

let trace_records_on_raise () =
  clean ();
  Obs.Trace.enable ();
  (try Obs.Trace.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check (list string)) "span survived the raise" [ "boom" ]
    (List.map (fun s -> s.Obs.Trace.name) (Obs.Trace.roots ()));
  clean ()

let trace_sequential_roots () =
  clean ();
  Obs.Trace.enable ();
  Obs.Trace.with_span "first" (fun () -> ());
  Obs.Trace.with_span "second" (fun () -> ());
  Alcotest.(check (list string)) "oldest first" [ "first"; "second" ]
    (List.map (fun s -> s.Obs.Trace.name) (Obs.Trace.roots ()));
  (* Monotonic clock: later spans never start earlier. *)
  (match Obs.Trace.roots () with
  | [ a; b ] ->
      Alcotest.(check bool) "monotonic starts" true
        (b.Obs.Trace.start >= a.Obs.Trace.start)
  | _ -> Alcotest.fail "expected two roots");
  clean ()

let trace_gc_and_domain_attribution () =
  clean ();
  Obs.Trace.enable ();
  let sink = ref [] in
  Obs.Trace.with_span "alloc" (fun () ->
      (* Allocate enough boxed data that the minor-words delta must be
         visibly positive. *)
      for i = 0 to 10_000 do
        sink := (i, float_of_int i) :: !sink
      done);
  ignore (Sys.opaque_identity !sink);
  (match Obs.Trace.roots () with
  | [ sp ] ->
      Alcotest.(check int) "ran on this domain"
        (Domain.self () :> int)
        sp.Obs.Trace.domain;
      Alcotest.(check bool) "minor words attributed" true
        (sp.Obs.Trace.gc.Obs.Trace.minor_words > 0.0);
      Alcotest.(check bool) "collection counts non-negative" true
        (sp.Obs.Trace.gc.Obs.Trace.minor_collections >= 0
        && sp.Obs.Trace.gc.Obs.Trace.major_collections >= 0)
  | l -> Alcotest.failf "expected one root, got %d" (List.length l));
  clean ()

let trace_parallel_worker_lanes () =
  (* Parallel.map must wrap each worker domain in a parallel.worker root
     span so the Chrome exporter can give every domain its own lane. *)
  clean ();
  Obs.Report.enable_all ();
  let xs = List.init 16 Fun.id in
  let ys = Util.Parallel.map ~jobs:4 (fun i -> i * 2) xs in
  Alcotest.(check (list int)) "map intact" (List.map (fun i -> i * 2) xs) ys;
  let workers =
    List.filter (fun s -> s.Obs.Trace.name = "parallel.worker") (Obs.Trace.roots ())
  in
  Alcotest.(check int) "one span per worker" 4 (List.length workers);
  let domains =
    List.sort_uniq compare (List.map (fun s -> s.Obs.Trace.domain) workers)
  in
  Alcotest.(check int) "distinct domains" 4 (List.length domains);
  clean ()

(* ---------- Json ---------- *)

let json_scalars () =
  Alcotest.(check string) "null" "null" (Obs.Json.to_string Obs.Json.Null);
  Alcotest.(check string) "bool" "true" (Obs.Json.to_string (Obs.Json.Bool true));
  Alcotest.(check string) "int" "-3" (Obs.Json.to_string (Obs.Json.Int (-3)));
  Alcotest.(check string) "float" "2.5" (Obs.Json.to_string (Obs.Json.Float 2.5));
  Alcotest.(check string) "integral float" "4.0"
    (Obs.Json.to_string (Obs.Json.Float 4.0));
  Alcotest.(check string) "nan is null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.infinity))

let json_string_escaping () =
  Alcotest.(check string) "quotes/backslash/newline"
    {|"a\"b\\c\nd"|}
    (Obs.Json.to_string (Obs.Json.String "a\"b\\c\nd"));
  Alcotest.(check string) "control char" {|"\u0001"|}
    (Obs.Json.to_string (Obs.Json.String "\001"))

let json_compound () =
  let v =
    Obs.Json.Obj
      [
        ("xs", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Int 2 ]);
        ("empty", Obs.Json.Obj []);
      ]
  in
  Alcotest.(check string) "compact" {|{"xs":[1,2],"empty":{}}|}
    (Obs.Json.to_string v);
  (* The pretty renderer must stay parseable and keep the same tokens. *)
  let pretty = Obs.Json.to_string_pretty v in
  let strip s =
    String.to_seq s
    |> Seq.filter (fun c -> c <> ' ' && c <> '\n')
    |> String.of_seq
  in
  Alcotest.(check string) "pretty has same tokens" (Obs.Json.to_string v)
    (strip pretty)

(* ---------- Json parsing ---------- *)

let json_parse_scalars () =
  let ok v s =
    match Obs.Json.of_string s with
    | Ok got -> Alcotest.(check bool) (s ^ " parses") true (got = v)
    | Error m -> Alcotest.failf "%s: %s" s m
  in
  ok Obs.Json.Null "null";
  ok (Obs.Json.Bool true) "  true ";
  ok (Obs.Json.Bool false) "false";
  ok (Obs.Json.Int (-3)) "-3";
  ok (Obs.Json.Float 2.5) "2.5";
  ok (Obs.Json.Float 4.0) "4.0";
  ok (Obs.Json.Float 1e-3) "1e-3";
  ok (Obs.Json.String "a\"b\\c\nd") {|"a\"b\\c\nd"|};
  ok (Obs.Json.String "\001") {|""|};
  ok (Obs.Json.String "A") {|"A"|};
  ok (Obs.Json.Obj [ ("xs", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Int 2 ]) ])
    {| {"xs": [1, 2]} |};
  ok (Obs.Json.List []) "[]";
  ok (Obs.Json.Obj []) "{}"

let json_parse_errors () =
  let bad s =
    match Obs.Json.of_string s with
    | Ok _ -> Alcotest.failf "%S should not parse" s
    | Error _ -> ()
  in
  List.iter bad
    [ ""; "{"; "["; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "{\"a\" 1}"; "\"unterminated";
      "nulll"; "[1}" ]

let json_roundtrip_span_trees =
  (* The report pipeline in miniature: random span trees, serialised with
     the emitter, must parse back to the identical Json value — both
     compact and pretty-printed. *)
  let open QCheck in
  let gen_byte_string =
    Gen.string_size ~gen:(Gen.map Char.chr (Gen.int_range 0 255)) (Gen.int_bound 10)
  in
  let gen_float = Gen.map (fun i -> float_of_int i /. 64.0) (Gen.int_range 0 (1 lsl 20)) in
  let gen_gc =
    let open Gen in
    let* minor = map float_of_int (int_bound 100_000) in
    let* promoted = map float_of_int (int_bound 1_000) in
    let* major = map float_of_int (int_bound 10_000) in
    let* minc = int_bound 5 in
    let+ majc = int_bound 2 in
    {
      Obs.Trace.minor_words = minor;
      promoted_words = promoted;
      major_words = major;
      minor_collections = minc;
      major_collections = majc;
    }
  in
  let gen_span =
    let open Gen in
    fix
      (fun self depth ->
        let* name = gen_byte_string in
        let* start = gen_float in
        let* duration = gen_float in
        let* domain = int_bound 8 in
        let* gc = gen_gc in
        let* attrs = list_size (int_bound 3) (pair gen_byte_string gen_byte_string) in
        let+ children =
          if depth = 0 then return [] else list_size (int_bound 2) (self (depth - 1))
        in
        { Obs.Trace.name; start; duration; domain; gc; attrs; children })
      2
  in
  let prop sp =
    let doc = Obs.Json.List [ Obs.Trace.span_json sp ] in
    let compact = Obs.Json.of_string (Obs.Json.to_string doc) in
    let pretty = Obs.Json.of_string (Obs.Json.to_string_pretty doc) in
    compact = Ok doc && pretty = Ok doc
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"emit/parse round-trip of span trees"
       (QCheck.make gen_span) prop)

(* ---------- quantile histograms ---------- *)

let bucket_growth = Float.pow 2.0 0.25

(* Positive samples spanning ~1e-6 .. ~1e3: well above the underflow
   threshold and well inside the regular buckets, where the one-bucket
   accuracy contract holds. *)
let gen_samples ~min_size =
  QCheck.Gen.(
    list_size (int_range min_size 250)
      (map
         (fun i -> 1e-6 *. Float.pow 2.0 (float_of_int i /. 50.0))
         (int_range 0 1500)))

(* Same rank convention as Metrics.quantile: the smallest sample with at
   least [ceil (q * n)] samples at or below it. *)
let exact_quantile vs q =
  let sorted = List.sort compare vs in
  let n = List.length sorted in
  let rank =
    let r = int_of_float (Float.ceil (q *. float_of_int n)) in
    if r < 1 then 1 else if r > n then n else r
  in
  List.nth sorted (rank - 1)

let hist_quantile_within_bucket =
  let prop vs =
    let s = Obs.Metrics.summary_of_values (Array.of_list vs) in
    List.for_all
      (fun q ->
        let est = Obs.Metrics.quantile s q in
        let exact = exact_quantile vs q in
        (* The estimate is the geometric midpoint of the exact sample's
           bucket, so it sits within half a bucket (factor 2^(1/8)); one
           full bucket width leaves headroom for boundary rounding. *)
        est <= exact *. bucket_growth *. (1.0 +. 1e-9)
        && est >= exact /. bucket_growth /. (1.0 +. 1e-9))
      [ 0.5; 0.9; 0.95; 0.99 ]
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300
       ~name:"bucketed p50/p90/p95/p99 within one bucket of exact"
       (QCheck.make (gen_samples ~min_size:1))
       prop)

let hist_merge_associative =
  let gen =
    QCheck.Gen.triple (gen_samples ~min_size:0) (gen_samples ~min_size:0)
      (gen_samples ~min_size:0)
  in
  let prop (a, b, c) =
    let open Obs.Metrics in
    let s l = summary_of_values (Array.of_list l) in
    let sa = s a and sb = s b and sc = s c in
    let l = merge (merge sa sb) sc in
    let r = merge sa (merge sb sc) in
    let whole = s (a @ b @ c) in
    let eqf x y = x = y || (Float.is_nan x && Float.is_nan y) in
    let close x y =
      eqf x y || Float.abs (x -. y) <= 1e-9 *. (Float.abs x +. 1.0)
    in
    l.count = r.count
    && l.count = whole.count
    && l.buckets = r.buckets
    && l.buckets = whole.buckets
    && eqf l.min r.min && eqf l.min whole.min
    && eqf l.max r.max && eqf l.max whole.max
    (* sums agree up to float reassociation *)
    && close l.sum r.sum
    && close l.sum whole.sum
    (* empty is an identity on both sides *)
    && merge empty_summary l = l
    && merge l empty_summary = l
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200
       ~name:"merge is associative and agrees with the pooled summary"
       (QCheck.make gen) prop)

let hist_summary_json_roundtrip =
  (* The sap-stats v3 histogram leaf: summary -> JSON text -> parse ->
     summary must preserve counts and buckets exactly, and the recomputed
     quantiles must match (the emitter prints floats exactly). *)
  let prop vs =
    let open Obs.Metrics in
    let s = summary_of_values (Array.of_list vs) in
    let txt = Obs.Json.to_string (summary_json s) in
    match Obs.Json.of_string txt with
    | Error _ -> false
    | Ok j -> (
        match summary_of_json j with
        | None -> false
        | Some s' ->
            let eqf x y = x = y || (Float.is_nan x && Float.is_nan y) in
            s'.count = s.count && s'.buckets = s.buckets
            && eqf s'.sum s.sum && eqf s'.min s.min && eqf s'.max s.max
            && List.for_all
                 (fun q -> eqf (quantile s' q) (quantile s q))
                 [ 0.5; 0.9; 0.95; 0.99 ])
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"sap-stats v3 summary JSON round-trip"
       (QCheck.make (gen_samples ~min_size:0))
       prop)

let hist_edge_cases () =
  let open Obs.Metrics in
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (quantile empty_summary 0.5));
  Alcotest.(check bool) "no count field rejected" true
    (summary_of_json (Obs.Json.Obj [ ("sum", Obs.Json.Float 1.0) ]) = None);
  (* Out-of-range values land in the underflow/overflow buckets but the
     quantiles still clamp to the exact extremes. *)
  let s = summary_of_values [| 1e-12; 5.0; 1e9 |] in
  Alcotest.(check int) "count" 3 s.count;
  Alcotest.(check int) "underflow bucket" 1 s.buckets.(0);
  Alcotest.(check int) "overflow bucket" 1 s.buckets.(bucket_count - 1);
  Alcotest.(check (float 0.0)) "p0 clamps to min" 1e-12 (quantile s 0.0);
  Alcotest.(check (float 0.0)) "p100 clamps to max" 1e9 (quantile s 1.0);
  (* summary_observe is the single-step form of summary_of_values. *)
  let s' =
    List.fold_left summary_observe empty_summary [ 1e-12; 5.0; 1e9 ]
  in
  Alcotest.(check bool) "observe folds to of_values" true (s' = s);
  (* Grid sanity: the index function is total and monotone. *)
  Alcotest.(check int) "nan underflows" 0 (bucket_index Float.nan);
  Alcotest.(check int) "tiny underflows" 0 (bucket_index 1e-10);
  Alcotest.(check int) "huge overflows" (bucket_count - 1)
    (bucket_index infinity);
  let rec monotone i prev =
    i > 60
    || begin
         let v = 1e-9 *. Float.pow 10.0 (float_of_int i /. 4.0) in
         let k = bucket_index v in
         k >= prev && k >= 0 && k < bucket_count && monotone (i + 1) k
       end
  in
  Alcotest.(check bool) "bucket_index monotone" true (monotone 0 0)

(* ---------- Chrome trace ---------- *)

let mk_span ?(domain = 0) ?(attrs = []) ?(children = []) name start duration =
  {
    Obs.Trace.name;
    start;
    duration;
    domain;
    gc =
      {
        Obs.Trace.minor_words = 10.0;
        promoted_words = 1.0;
        major_words = 2.0;
        minor_collections = 0;
        major_collections = 0;
      };
    attrs;
    children;
  }

let assoc name = function
  | Obs.Json.Obj fields -> List.assoc_opt name fields
  | _ -> None

let chrome_trace_structure () =
  let child = mk_span "inner" 10.5 0.25 ~attrs:[ ("k", "v") ] in
  let root = mk_span "outer" 10.0 1.0 ~children:[ child ] in
  let worker = mk_span "parallel.worker" 10.2 0.5 ~domain:3 in
  let doc = Obs.Chrome_trace.convert [ root; worker ] in
  let events =
    match assoc "traceEvents" doc with
    | Some (Obs.Json.List evs) -> evs
    | _ -> Alcotest.fail "traceEvents missing"
  in
  let phase ev =
    match assoc "ph" ev with Some (Obs.Json.String p) -> p | _ -> "?"
  in
  let metas, xs = List.partition (fun ev -> phase ev = "M") events in
  (* One process_name + one thread_name per distinct domain (0 and 3). *)
  Alcotest.(check int) "metadata events" 3 (List.length metas);
  Alcotest.(check int) "complete events" 3 (List.length xs);
  (* Metadata precedes complete events. *)
  let rec first_x_index i = function
    | [] -> i
    | ev :: rest -> if phase ev = "X" then i else first_x_index (i + 1) rest
  in
  Alcotest.(check int) "metadata first" (List.length metas)
    (first_x_index 0 events);
  let ts ev = match assoc "ts" ev with Some (Obs.Json.Float t) -> t | _ -> -1.0 in
  let rec sorted = function
    | a :: (b :: _ as rest) -> ts a <= ts b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "X events sorted by ts" true (sorted xs);
  (* ts is relative to the earliest span, in microseconds. *)
  Alcotest.(check bool) "first ts is 0" true (ts (List.hd xs) = 0.0);
  let outer = List.hd xs in
  (match assoc "dur" outer with
  | Some (Obs.Json.Float d) ->
      Alcotest.(check bool) "dur in microseconds" true
        (Helpers.close_enough d 1e6)
  | _ -> Alcotest.fail "dur missing");
  (* Worker domain lands on its own track, and every event carries gc args. *)
  let tid ev = match assoc "tid" ev with Some (Obs.Json.Int t) -> t | _ -> -1 in
  Alcotest.(check (list int)) "tids" [ 0; 3; 0 ] (List.map tid xs);
  List.iter
    (fun ev ->
      match assoc "args" ev with
      | Some args ->
          Alcotest.(check bool) "gc in args" true (assoc "gc" args <> None)
      | None -> Alcotest.fail "args missing")
    xs

(* ---------- Diff ---------- *)

let diff_report counters extras =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "sap-stats v3");
      ( "metrics",
        Obs.Json.Obj
          [
            ( "counters",
              Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Int v)) counters) );
            ("gauges", Obs.Json.Obj []);
            ("histograms", Obs.Json.Obj []);
          ] );
      ("spans", Obs.Json.List []);
    ]
  |> function
  | Obs.Json.Obj fields -> Obs.Json.Obj (fields @ extras)
  | _ -> assert false

let failures findings =
  List.filter (fun f -> Obs.Diff.is_failure f.Obs.Diff.status) findings

let diff_identical_ok () =
  let r = diff_report [ ("a.x", 10); ("b.y", 0) ] [] in
  let findings = Obs.Diff.compare_reports ~old_report:r ~new_report:r () in
  Alcotest.(check int) "no failures" 0 (List.length (failures findings));
  Alcotest.(check bool) "spans skipped, schema matched" true
    (Obs.Diff.count Obs.Diff.Match findings >= 3)

let diff_counter_regression () =
  let old_r = diff_report [ ("dp.states", 100) ] [] in
  let new_r = diff_report [ ("dp.states", 120) ] [] in
  let findings = Obs.Diff.compare_reports ~old_report:old_r ~new_report:new_r () in
  (match failures findings with
  | [ f ] ->
      Alcotest.(check string) "path" "metrics.counters.dp.states" f.Obs.Diff.path;
      Alcotest.(check bool) "regressed" true (f.Obs.Diff.status = Obs.Diff.Regressed)
  | l -> Alcotest.failf "expected one failure, got %d" (List.length l));
  (* The same drift passes under a loose counter tolerance. *)
  let loose =
    { Obs.Diff.default_thresholds with Obs.Diff.counter_tol = 0.5 }
  in
  let findings =
    Obs.Diff.compare_reports ~thresholds:loose ~old_report:old_r ~new_report:new_r ()
  in
  Alcotest.(check int) "within tolerance" 0 (List.length (failures findings))

let diff_missing_and_added () =
  let old_r = diff_report [ ("a", 1); ("b", 2) ] [] in
  let new_r = diff_report [ ("a", 1); ("c", 3) ] [] in
  let findings = Obs.Diff.compare_reports ~old_report:old_r ~new_report:new_r () in
  Alcotest.(check int) "missing b fails" 1 (List.length (failures findings));
  Alcotest.(check int) "missing status" 1 (Obs.Diff.count Obs.Diff.Missing findings);
  Alcotest.(check int) "added c noted" 1 (Obs.Diff.count Obs.Diff.Added findings)

let diff_timing_semantics () =
  let with_time t =
    diff_report [ ("a", 1) ]
      [ ("result", Obs.Json.Obj [ ("time_seconds", Obs.Json.Float t) ]) ]
  in
  (* Default: timing is not gated at all. *)
  let findings =
    Obs.Diff.compare_reports ~old_report:(with_time 1.0) ~new_report:(with_time 50.0) ()
  in
  Alcotest.(check int) "ungated" 0 (List.length (failures findings));
  let gated = { Obs.Diff.default_thresholds with Obs.Diff.time_factor = 1.5 } in
  (* Slower beyond the factor: regression. *)
  let findings =
    Obs.Diff.compare_reports ~thresholds:gated ~old_report:(with_time 1.0)
      ~new_report:(with_time 2.0) ()
  in
  Alcotest.(check int) "slowdown fails" 1 (List.length (failures findings));
  (* Faster: improvement, never a failure. *)
  let findings =
    Obs.Diff.compare_reports ~thresholds:gated ~old_report:(with_time 2.0)
      ~new_report:(with_time 1.0) ()
  in
  Alcotest.(check int) "speedup passes" 0 (List.length (failures findings));
  Alcotest.(check int) "marked improved" 1 (Obs.Diff.count Obs.Diff.Improved findings)

let diff_ignore_prefixes () =
  let old_r = diff_report [ ("a", 1) ] [] in
  let new_r = diff_report [ ("a", 2) ] [] in
  let t =
    { Obs.Diff.default_thresholds with Obs.Diff.ignore_prefixes = [ "metrics.counters" ] }
  in
  let findings =
    Obs.Diff.compare_reports ~thresholds:t ~old_report:old_r ~new_report:new_r ()
  in
  Alcotest.(check int) "ignored" 0 (List.length (failures findings))

let diff_table_renders () =
  let old_r = diff_report [ ("a", 1) ] [] in
  let new_r = diff_report [ ("a", 2) ] [] in
  let findings = Obs.Diff.compare_reports ~old_report:old_r ~new_report:new_r () in
  let table = Obs.Diff.render_table findings in
  let contains sub =
    let n = String.length table and m = String.length sub in
    let rec go i = i + m <= n && (String.sub table i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "metric named" true (contains "metrics.counters.a");
  Alcotest.(check bool) "status shown" true (contains "REGRESSED");
  Alcotest.(check bool) "summary counts failures" true
    (let s = Obs.Diff.summary findings in
     let n = String.length s and m = String.length "1 regressed" in
     let rec go i = i + m <= n && (String.sub s i m = "1 regressed" || go (i + 1)) in
     go 0)

let diff_hist_report hists =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "sap-stats v3");
      ( "metrics",
        Obs.Json.Obj
          [
            ("counters", Obs.Json.Obj []);
            ("gauges", Obs.Json.Obj []);
            ("histograms", Obs.Json.Obj hists);
          ] );
      ("spans", Obs.Json.List []);
    ]

let diff_quantile_leaves_are_timing () =
  (* A histogram whose name carries no timing keyword: its p50 leaf must
     still classify as timing (ungated by default, factor-gated under
     --time-factor), while its count stays a gated counter. *)
  let report p50 =
    diff_hist_report
      [
        ( "lab.ratio",
          Obs.Json.Obj
            [ ("count", Obs.Json.Int 4); ("p50", Obs.Json.Float p50) ] );
      ]
  in
  let findings =
    Obs.Diff.compare_reports ~old_report:(report 1.0) ~new_report:(report 40.0)
      ()
  in
  Alcotest.(check int) "10x p50 drift ungated by default" 0
    (List.length (failures findings));
  let gated = { Obs.Diff.default_thresholds with Obs.Diff.time_factor = 1.5 } in
  let findings =
    Obs.Diff.compare_reports ~thresholds:gated ~old_report:(report 1.0)
      ~new_report:(report 40.0) ()
  in
  (match failures findings with
  | [ f ] ->
      Alcotest.(check string) "p50 path"
        "metrics.histograms.lab.ratio.p50" f.Obs.Diff.path
  | l -> Alcotest.failf "expected one failure, got %d" (List.length l));
  let findings =
    Obs.Diff.compare_reports ~thresholds:gated ~old_report:(report 40.0)
      ~new_report:(report 1.0) ()
  in
  Alcotest.(check int) "speedup never fails" 0 (List.length (failures findings));
  Alcotest.(check int) "speedup marked improved" 1
    (Obs.Diff.count Obs.Diff.Improved findings)

let diff_buckets_subtree_ignored () =
  (* Bucket keys flap between machines of different speeds (the same
     latency lands one bucket over), so the sparse .buckets. subtree must
     never produce Missing/Added findings. *)
  let report idx =
    diff_hist_report
      [
        ( "server.latency.total",
          Obs.Json.Obj
            [
              ("count", Obs.Json.Int 7);
              ("buckets", Obs.Json.Obj [ (idx, Obs.Json.Int 7) ]);
            ] );
      ]
  in
  let findings =
    Obs.Diff.compare_reports ~old_report:(report "42") ~new_report:(report "55")
      ()
  in
  Alcotest.(check int) "disjoint bucket keys: no failures" 0
    (List.length (failures findings));
  List.iter
    (fun f ->
      let p = f.Obs.Diff.path in
      let is_bucket =
        let n = String.length p and m = String.length ".buckets." in
        let rec go i =
          i + m <= n && (String.sub p i m = ".buckets." || go (i + 1))
        in
        go 0
      in
      if is_bucket then
        Alcotest.(check bool) (p ^ " skipped") true
          (f.Obs.Diff.status = Obs.Diff.Skipped))
    findings

(* ---------- atomic writes ---------- *)

let report_write_is_atomic () =
  let dir = Filename.temp_file "obs_report" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let target = Filename.concat dir "report.json" in
      let doc = Obs.Json.Obj [ ("k", Obs.Json.Int 1) ] in
      Obs.Report.write_file target doc;
      Obs.Report.write_file target doc;
      (* Only the target remains: temp files are renamed away or removed. *)
      Alcotest.(check (list string)) "no temp droppings" [ "report.json" ]
        (Array.to_list (Sys.readdir dir));
      let ic = open_in target in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      Alcotest.(check bool) "written content parses" true
        (Obs.Json.of_string s = Ok doc))

(* ---------- Report ---------- *)

let report_schema_and_extras () =
  clean ();
  Obs.Report.enable_all ();
  let c = Obs.Metrics.counter "t.report.counter" in
  Obs.Metrics.incr c;
  Obs.Trace.with_span "t.report.span" (fun () -> ());
  let report = Obs.Report.build ~extra:[ ("command", Obs.Json.String "test") ] () in
  let s = Obs.Json.to_string report in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun sub -> Alcotest.(check bool) (sub ^ " present") true (contains sub))
    [
      {|"schema":"sap-stats v3"|};
      {|"clock":{"wall_epoch_seconds":|};
      {|"command":"test"|};
      {|"counters"|};
      {|"gauges"|};
      {|"histograms"|};
      {|"t.report.counter":1|};
      {|"name":"t.report.span"|};
      {|"gc":{"minor_words":|};
      {|"domain":|};
    ];
  (* The emitted report must parse with our own parser (bench-diff eats
     these files). *)
  Alcotest.(check bool) "report parses" true
    (match Obs.Json.of_string s with Ok _ -> true | Error _ -> false);
  clean ()

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          case "disabled is a no-op" metrics_disabled_noop;
          case "counter roundtrip" metrics_counter_roundtrip;
          case "gauge and histogram" metrics_gauge_and_histogram;
          case "parallel counters" metrics_parallel_counters;
          case "reset keeps names" metrics_reset_keeps_names;
          case "time passthrough" metrics_time_passthrough;
        ] );
      ( "trace",
        [
          case "disabled passthrough" trace_disabled_passthrough;
          case "nesting and attrs" trace_nesting_and_attrs;
          case "records on raise" trace_records_on_raise;
          case "sequential roots" trace_sequential_roots;
          case "gc and domain attribution" trace_gc_and_domain_attribution;
          case "parallel worker lanes" trace_parallel_worker_lanes;
        ] );
      ( "json",
        [
          case "scalars" json_scalars;
          case "string escaping" json_string_escaping;
          case "compound" json_compound;
          case "parse scalars" json_parse_scalars;
          case "parse errors" json_parse_errors;
          json_roundtrip_span_trees;
        ] );
      ( "histogram",
        [
          hist_quantile_within_bucket;
          hist_merge_associative;
          hist_summary_json_roundtrip;
          case "edge cases and grid sanity" hist_edge_cases;
        ] );
      ( "chrome-trace", [ case "structure and ordering" chrome_trace_structure ] );
      ( "diff",
        [
          case "identical reports pass" diff_identical_ok;
          case "counter regression fails" diff_counter_regression;
          case "missing and added metrics" diff_missing_and_added;
          case "timing semantics" diff_timing_semantics;
          case "quantile leaves gate as timing" diff_quantile_leaves_are_timing;
          case "bucket subtrees ignored" diff_buckets_subtree_ignored;
          case "ignore prefixes" diff_ignore_prefixes;
          case "table rendering" diff_table_renders;
        ] );
      ( "report",
        [
          case "schema and extras" report_schema_and_extras;
          case "write_file is atomic" report_write_is_atomic;
        ] );
    ]
