(* Shared helpers for the test suite: seed-driven instance generation (so
   qcheck shrinks over seeds, not structures) and assertion utilities. *)

module Task = Core.Task
module Path = Core.Path

let check_ok what = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" what msg

let assert_feasible_sap path sol = check_ok "sap feasible" (Core.Checker.sap_feasible path sol)

let assert_feasible_ufpp path ts = check_ok "ufpp feasible" (Core.Checker.ufpp_feasible path ts)

(* Deterministic small instance families, indexed by an integer seed. *)

let random_path prng =
  match Util.Prng.int prng 4 with
  | 0 ->
      Gen.Profiles.uniform
        ~edges:(Util.Prng.int_in prng 3 8)
        ~capacity:(Util.Prng.int_in prng 4 20)
  | 1 ->
      Gen.Profiles.valley
        ~edges:(Util.Prng.int_in prng 4 8)
        ~high:(Util.Prng.int_in prng 12 24)
        ~low:(Util.Prng.int_in prng 4 10)
  | 2 ->
      Gen.Profiles.staircase
        ~edges:(Util.Prng.int_in prng 4 8)
        ~steps:(Util.Prng.int_in prng 2 3)
        ~base:(Util.Prng.int_in prng 4 8)
  | _ ->
      Gen.Profiles.random_walk ~prng
        ~edges:(Util.Prng.int_in prng 4 8)
        ~start:(Util.Prng.int_in prng 8 16)
        ~max_step:3 ~min_cap:4

let tiny_instance ?(max_tasks = 9) seed =
  let prng = Util.Prng.create seed in
  let path = random_path prng in
  let n = Util.Prng.int_in prng 2 max_tasks in
  let tasks = Gen.Workloads.mixed_tasks ~prng ~path ~n () in
  (path, tasks)

let tiny_ratio_instance ?(max_tasks = 9) ~lo ~hi seed =
  let prng = Util.Prng.create seed in
  let path = random_path prng in
  let n = Util.Prng.int_in prng 2 max_tasks in
  let tasks = Gen.Workloads.ratio_tasks ~prng ~path ~n ~lo ~hi () in
  (path, tasks)

(* qcheck boilerplate: a property over integer seeds, registered as an
   alcotest case. *)
let seed_property ?(count = 60) name prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name
       QCheck.(int_range 0 1_000_000)
       prop)

let close_enough ?(tol = 1e-6) a b = Float.abs (a -. b) <= tol *. (1.0 +. Float.abs a)

let case name f = Alcotest.test_case name `Quick f
