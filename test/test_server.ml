(* The solve service: content fingerprints, the LRU cache, the persistent
   worker pool, the wire protocol, and the request lifecycle end to end —
   including the acceptance-critical properties: every response is
   checker-valid, a repeated instance is a cache hit, and a graceful
   drain loses no accepted request. *)

module Task = Core.Task
module Path = Core.Path
module Fingerprint = Sap_server.Fingerprint
module Cache = Sap_server.Cache
module Pool = Sap_server.Pool
module Proto = Sap_server.Protocol
module Server = Sap_server.Server
module Transport = Sap_server.Transport
module Client = Sap_server.Client

let case = Helpers.case

(* ---------- fingerprint ---------- *)

let key_of ?(problem = "sap") ?(algorithm = "combine") ?(seed = 42) path tasks =
  Fingerprint.solve_key ~problem ~algorithm ~seed path tasks

let fingerprint_order_invariant =
  Helpers.seed_property "task order does not change the key" (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      let arr = Array.of_list tasks in
      Util.Prng.shuffle (Util.Prng.create (seed + 1)) arr;
      key_of path tasks = key_of path (Array.to_list arr))

let fingerprint_field_sensitivity () =
  let path = Path.create [| 6; 8; 6; 7 |] in
  let t ~id ~first ~last ~d ~w =
    Task.make ~id ~first_edge:first ~last_edge:last ~demand:d ~weight:w
  in
  let tasks =
    [ t ~id:0 ~first:0 ~last:1 ~d:2 ~w:1.5; t ~id:1 ~first:1 ~last:3 ~d:3 ~w:2.0 ]
  in
  let base = key_of path tasks in
  let differs what key = Alcotest.(check bool) what true (key <> base) in
  differs "capacity change"
    (key_of (Path.create [| 6; 8; 6; 8 |]) tasks);
  differs "extra edge" (key_of (Path.create [| 6; 8; 6; 7; 7 |]) tasks);
  differs "demand change"
    (key_of path [ t ~id:0 ~first:0 ~last:1 ~d:1 ~w:1.5; List.nth tasks 1 ]);
  differs "weight change"
    (key_of path [ t ~id:0 ~first:0 ~last:1 ~d:2 ~w:1.25; List.nth tasks 1 ]);
  differs "interval change"
    (key_of path [ t ~id:0 ~first:0 ~last:2 ~d:2 ~w:1.5; List.nth tasks 1 ]);
  differs "id change"
    (key_of path [ t ~id:7 ~first:0 ~last:1 ~d:2 ~w:1.5; List.nth tasks 1 ]);
  differs "dropped task" (key_of path [ List.hd tasks ]);
  differs "algorithm change" (key_of ~algorithm:"small" path tasks);
  differs "seed change" (key_of ~seed:43 path tasks);
  differs "problem change" (key_of ~problem:"round" path tasks)

(* The satellite pin: a [solve] and a [round-solve] for the same
   instance, algorithm name and seed must key differently, always —
   otherwise the shared LRU would serve a SAP solution to a ROUND-SAP
   client (or vice versa). *)
let fingerprint_problem_kind_separates =
  Helpers.seed_property "solve and round-solve keys never collide"
    (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      List.for_all
        (fun algorithm ->
          key_of ~problem:"sap" ~algorithm ~seed:0 path tasks
          <> key_of ~problem:"round" ~algorithm ~seed:0 path tasks)
        [ "bands"; "first-fit"; "exact"; "combine" ])

let fnv_reference () =
  (* Published FNV-1a/64 test vectors. *)
  Alcotest.(check string) "empty" "cbf29ce484222325"
    (Printf.sprintf "%016Lx" (Fingerprint.fnv1a64 ""));
  Alcotest.(check string) "a" "af63dc4c8601ec8c"
    (Printf.sprintf "%016Lx" (Fingerprint.fnv1a64 "a"));
  Alcotest.(check string) "foobar" "85944171f73967e8"
    (Printf.sprintf "%016Lx" (Fingerprint.fnv1a64 "foobar"))

(* ---------- cache ---------- *)

let cache_lru_eviction_order () =
  let c = Cache.create ~capacity:3 in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  Cache.add c "c" 3;
  (* Touch "a" so "b" becomes the LRU entry. *)
  Alcotest.(check (option int)) "hit a" (Some 1) (Cache.find c "a");
  Cache.add c "d" 4;
  Alcotest.(check (option int)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Cache.find c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Cache.find c "c");
  Alcotest.(check (option int)) "d kept" (Some 4) (Cache.find c "d");
  let s = Cache.stats c in
  Alcotest.(check int) "evictions" 1 s.Cache.evictions;
  Alcotest.(check int) "entries" 3 s.Cache.entries;
  (* 1 (a) + 1 (b miss) + 3 = 4 hits, 1 miss. *)
  Alcotest.(check int) "hits" 4 s.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Cache.misses

let cache_refresh_on_add () =
  let c = Cache.create ~capacity:2 in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  Cache.add c "a" 10;
  (* refreshes both value and recency *)
  Cache.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option int)) "a updated" (Some 10) (Cache.find c "a")

let cache_zero_capacity () =
  let c = Cache.create ~capacity:0 in
  Cache.add c "a" 1;
  Alcotest.(check (option int)) "disabled" None (Cache.find c "a");
  Alcotest.(check int) "no entries" 0 (Cache.stats c).Cache.entries

(* ---------- pool ---------- *)

let pool_map_matches_list_map () =
  let p = Pool.create ~workers:3 ~queue_capacity:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  let xs = List.init 37 Fun.id in
  Alcotest.(check (list int)) "squares" (List.map (fun x -> x * x) xs)
    (Pool.map p (fun x -> x * x) xs);
  (* The pool is persistent: a second map reuses the same workers. *)
  Alcotest.(check (list int)) "reuse" (List.map succ xs) (Pool.map p succ xs)

let pool_exception_propagates () =
  let p = Pool.create ~workers:2 ~queue_capacity:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  match Pool.map p (fun x -> if x = 3 then failwith "boom3" else x) (List.init 6 Fun.id) with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure m -> Alcotest.(check string) "first failure" "boom3" m

let pool_drain_loses_nothing () =
  (* Graceful shutdown under load: 4 producer domains race 40 jobs through
     a 2-worker pool with a tiny queue (so submissions block on the
     high-water mark), then the pool drains.  Every accepted job must have
     run. *)
  let p = Pool.create ~workers:2 ~queue_capacity:2 () in
  let ran = Atomic.make 0 in
  let producers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            List.init 10 (fun i ->
                Pool.submit p (fun () ->
                    Atomic.incr ran;
                    i))))
  in
  let futures = List.concat_map Domain.join producers in
  Pool.shutdown p;
  Alcotest.(check int) "all jobs ran" 40 (Atomic.get ran);
  List.iter
    (fun fut -> Alcotest.(check bool) "future completed" true (Pool.completed fut))
    futures;
  let s = Pool.stats p in
  Alcotest.(check int) "submitted" 40 s.Pool.submitted;
  Alcotest.(check int) "completed" 40 s.Pool.completed;
  Alcotest.(check bool) "bounded queue respected" true
    (s.Pool.max_queue_depth <= 2)

let pool_rejects_after_shutdown () =
  let p = Pool.create ~workers:1 ~queue_capacity:1 () in
  Pool.shutdown p;
  (match Pool.submit p (fun () -> ()) with
  | _ -> Alcotest.fail "expected Closed"
  | exception Pool.Closed -> ());
  (* Idempotent. *)
  Pool.shutdown p

let pool_await_until_deadline () =
  let p = Pool.create ~workers:1 ~queue_capacity:1 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  let fut = Pool.submit p (fun () -> Unix.sleepf 0.05; 42) in
  let early =
    Pool.await_until fut ~deadline:(Obs.Clock.monotonic_seconds () +. 0.005)
  in
  Alcotest.(check (option int)) "deadline first" None early;
  Alcotest.(check int) "job still completes" 42 (Pool.await fut)

let pool_as_parallel_runner () =
  let p = Pool.create ~workers:3 ~queue_capacity:8 () in
  Pool.install_parallel_runner p;
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  let xs = List.init 25 Fun.id in
  Alcotest.(check (list int)) "map via pool" (List.map (fun x -> 3 * x) xs)
    (Util.Parallel.map (fun x -> 3 * x) xs);
  (match Util.Parallel.map (fun x -> if x = 2 then failwith "pe" else x) xs with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure m -> Alcotest.(check string) "error via pool" "pe" m);
  (* Re-entrant fan-out from inside a worker degrades to inline execution
     instead of deadlocking on the pool's own capacity. *)
  let nested =
    Pool.await
      (Pool.submit p (fun () -> Util.Parallel.map succ (List.init 30 Fun.id)))
  in
  Alcotest.(check (list int)) "nested map" (List.init 30 succ) nested

let parallel_runner_uninstalled_on_shutdown () =
  let p = Pool.create ~workers:2 ~queue_capacity:2 () in
  Pool.install_parallel_runner p;
  Pool.shutdown p;
  (* The spawn-per-call path must be back, or this would raise Closed. *)
  Alcotest.(check (list int)) "fallback works" [ 2; 3; 4 ]
    (Util.Parallel.map succ [ 1; 2; 3 ])

(* ---------- protocol ---------- *)

let sample_params seed =
  let g = Util.Prng.create seed in
  {
    Proto.algorithm = Util.Prng.choose g [| "combine"; "small"; "firstfit"; "exact" |];
    seed = Util.Prng.int g 1000;
    timeout_ms = (if Util.Prng.bool g then Some (Util.Prng.int g 10_000) else None);
    cache = Util.Prng.bool g;
  }

let check_instance_equal (p1, ts1) (p2, ts2) =
  Alcotest.(check (array int)) "capacities" (Path.capacities p1) (Path.capacities p2);
  Alcotest.(check int) "task count" (List.length ts1) (List.length ts2);
  List.iter2
    (fun (a : Task.t) (b : Task.t) ->
      Alcotest.(check bool) "task equal" true (a = b))
    ts1 ts2

let request_roundtrip =
  Helpers.seed_property "request print/parse round-trip" (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      let params = sample_params seed in
      let reqs =
        [
          Proto.Solve { id = seed mod 997; params; path; tasks };
          Proto.Round_solve
            {
              id = seed mod 991;
              algorithm = Util.Prng.choose (Util.Prng.create seed)
                  [| "bands"; "first-fit"; "next-fit"; "exact" |];
              cache = seed mod 2 = 0;
              path;
              tasks;
            };
          Proto.Stats { id = 1 };
          Proto.Ping { id = 2 };
          Proto.Shutdown { id = 3 };
        ]
      in
      List.for_all
        (fun req ->
          match Proto.request_of_string (Proto.request_to_string req) with
          | Error m -> Alcotest.failf "parse failed: %s" m
          | Ok req' -> (
              match (req, req') with
              | Proto.Solve s, Proto.Solve s' ->
                  check_instance_equal (s.path, s.tasks) (s'.path, s'.tasks);
                  s.id = s'.id && s.params = s'.params
              | Proto.Round_solve r, Proto.Round_solve r' ->
                  check_instance_equal (r.path, r.tasks) (r'.path, r'.tasks);
                  r.id = r'.id && r.algorithm = r'.algorithm
                  && r.cache = r'.cache
              | _ -> req = req'))
        reqs)

let nasty_message seed =
  let g = Util.Prng.create seed in
  String.init (Util.Prng.int_in g 0 40) (fun _ -> Char.chr (Util.Prng.int g 256))

let response_roundtrip =
  Helpers.seed_property "response print/parse round-trip" (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      ignore path;
      let id = seed mod 997 in
      let tasks_for i = if i = id then Some tasks else None in
      let solution =
        List.filteri (fun i _ -> i mod 2 = 0) tasks
        |> List.mapi (fun i j -> (j, 2 * i))
      in
      let half = (List.length tasks + 1) / 2 in
      let round_of sel =
        List.filteri (fun i _ -> sel i) tasks |> List.map (fun j -> (j, 0))
      in
      let rounds =
        [ round_of (fun i -> i < half); round_of (fun i -> i >= half) ]
      in
      let resps =
        [
          Proto.Round_solved
            {
              id;
              summary =
                {
                  Proto.r_rounds = List.length rounds;
                  r_cached = seed mod 2 = 1;
                  r_time_ms = float_of_int (seed mod 31) /. 3.0;
                };
              rounds;
            };
          Proto.Solved
            {
              id;
              summary =
                {
                  Proto.scheduled = List.length solution;
                  weight = Core.Solution.sap_weight solution;
                  cached = seed mod 2 = 0;
                  time_ms = float_of_int (seed mod 50) /. 7.0;
                };
              solution;
            };
          Proto.Ack { id };
          Proto.Timed_out { id };
          Proto.Failed
            { id; code = Proto.Unknown_algorithm; message = nasty_message seed };
          Proto.Failed { id; code = Proto.Bad_request; message = "plain text with spaces" };
          Proto.Stats_reply
            {
              id;
              stats =
                Obs.Json.Obj
                  [
                    ("requests", Obs.Json.Int seed);
                    ("ratio", Obs.Json.Float 1.5);
                    ("name", Obs.Json.String "srv \"quoted\"");
                  ];
            };
        ]
      in
      List.for_all
        (fun resp ->
          match
            Proto.response_of_string ~tasks_for (Proto.response_to_string resp)
          with
          | Error m -> Alcotest.failf "parse failed: %s" m
          | Ok resp' -> (
              match (resp, resp') with
              | Proto.Stats_reply a, Proto.Stats_reply b ->
                  (* JSON numeric round-trips are structural, not
                     constructor-exact; compare serialized forms. *)
                  a.id = b.id
                  && Obs.Json.to_string a.stats = Obs.Json.to_string b.stats
              | Proto.Solved a, Proto.Solved b ->
                  (* The wire format emits placements sorted by id. *)
                  a.id = b.id && a.summary = b.summary
                  && Core.Solution.sort_by_id a.solution
                     = Core.Solution.sort_by_id b.solution
              | Proto.Round_solved a, Proto.Round_solved b ->
                  a.id = b.id && a.summary = b.summary
                  && List.length a.rounds = List.length b.rounds
                  && List.for_all2
                       (fun r r' ->
                         Core.Solution.sort_by_id r
                         = Core.Solution.sort_by_id r')
                       a.rounds b.rounds
              | _ -> resp = resp'))
        resps)

let protocol_rejects_malformed () =
  let expect_error what s =
    match Proto.request_of_string s with
    | Ok _ -> Alcotest.failf "%s: unexpectedly parsed" what
    | Error _ -> ()
  in
  expect_error "empty" "";
  expect_error "no terminator" "sap-request v1 0 ping\n";
  expect_error "bad header" "sap-request v2 0 ping\nend\n";
  expect_error "unknown verb" "sap-request v1 0 flush\nend\n";
  expect_error "negative id" "sap-request v1 -4 ping\nend\n";
  expect_error "unknown attribute" "sap-request v1 0 solve wat=1\nsap-instance v1\ncapacities 4\nend\n";
  expect_error "body on ping" "sap-request v1 0 ping\nsap-instance v1\nend\n";
  expect_error "garbage instance" "sap-request v1 0 solve\nnot an instance\nend\n";
  expect_error "sap body on round-solve"
    "sap-request v1 0 round-solve\nsap-instance v1\ncapacities 4\nend\n";
  expect_error "round body on solve"
    "sap-request v1 0 solve\nround-instance v1\ncapacities 4\nend\n";
  expect_error "seed attr on round-solve"
    "sap-request v1 0 round-solve seed=7\nround-instance v1\ncapacities 4\nend\n";
  match Proto.response_of_string ~tasks_for:(fun _ -> None)
          "sap-response v1 3 solved scheduled=1 weight=1 cached=0 time-ms=1\nsap-solution v1\nend\n"
  with
  | Ok _ -> Alcotest.fail "unknown id unexpectedly resolved"
  | Error _ -> ()

(* ---------- server lifecycle (in-process) ---------- *)

let default_params = Proto.default_solve_params

let mixed_instances n =
  List.init n (fun i -> Helpers.tiny_instance (1000 + (17 * i)))

let e2e_concurrent_solves_and_cache () =
  let config =
    { Server.default_config with Server.workers = Some 4; cache_capacity = 256 }
  in
  let srv = Server.create ~config () in
  Fun.protect ~finally:(fun () -> Server.drain srv) @@ fun () ->
  let instances = mixed_instances 20 in
  let submit_all () =
    (* Admit everything before forcing anything: all solves are in flight
       concurrently across the pool. *)
    let pendings =
      List.mapi
        (fun i (path, tasks) ->
          Server.submit srv
            (Proto.Solve { id = i; params = default_params; path; tasks }))
        instances
    in
    List.map (fun p -> p.Server.force ()) pendings
  in
  let check_round ~cached responses =
    List.iteri
      (fun i resp ->
        let path, tasks = List.nth instances i in
        match resp with
        | Proto.Solved { id; summary; solution } ->
            Alcotest.(check int) "id echoed" i id;
            Helpers.assert_feasible_sap path solution;
            Alcotest.(check bool) "tasks are the instance's" true
              (Core.Checker.subset_of (Core.Solution.sap_tasks solution) tasks);
            Alcotest.(check bool) "cached flag" cached summary.Proto.cached;
            Alcotest.(check bool) "weight consistent" true
              (Helpers.close_enough summary.Proto.weight
                 (Core.Solution.sap_weight solution))
        | _ -> Alcotest.failf "request %d: unexpected response" i)
      responses
  in
  check_round ~cached:false (submit_all ());
  (* The whole batch again: every solve must be served from the cache. *)
  check_round ~cached:true (submit_all ());
  let int_field section field json =
    match json with
    | Obs.Json.Obj fields -> (
        match List.assoc_opt section fields with
        | Some (Obs.Json.Obj sub) -> (
            match List.assoc_opt field sub with
            | Some (Obs.Json.Int n) -> n
            | _ -> Alcotest.failf "stats: %s.%s missing" section field)
        | _ -> Alcotest.failf "stats: %s section missing" section)
    | _ -> Alcotest.fail "stats payload is not an object"
  in
  match Server.handle srv (Proto.Stats { id = 99 }) with
  | Proto.Stats_reply { stats; _ } ->
      (* 20 cold solves + 20 warm + this stats request. *)
      Alcotest.(check int) "requests total" 41 (int_field "requests" "total" stats);
      Alcotest.(check int) "all solved" 40 (int_field "requests" "solved" stats);
      Alcotest.(check int) "cache hits" 20 (int_field "cache" "hits" stats);
      Alcotest.(check int) "cache misses" 20 (int_field "cache" "misses" stats)
  | _ -> Alcotest.fail "stats request failed"

let e2e_error_responses () =
  let srv = Server.create ~config:{ Server.default_config with Server.workers = Some 2 } () in
  Fun.protect ~finally:(fun () -> Server.drain srv) @@ fun () ->
  let path, tasks = Helpers.tiny_instance 7 in
  (match
     Server.handle srv
       (Proto.Solve
          {
            id = 0;
            params = { default_params with Proto.algorithm = "nonsense" };
            path;
            tasks;
          })
   with
  | Proto.Failed { code = Proto.Unknown_algorithm; _ } -> ()
  | _ -> Alcotest.fail "expected unknown-algorithm");
  (* A zero deadline can never be met: the clean timeout response. *)
  match
    Server.handle srv
      (Proto.Solve
         {
           id = 1;
           params = { default_params with Proto.timeout_ms = Some 0 };
           path;
           tasks;
         })
  with
  | Proto.Timed_out { id = 1 } -> ()
  | _ -> Alcotest.fail "expected timeout"

let e2e_round_solve () =
  let srv =
    Server.create
      ~config:{ Server.default_config with Server.workers = Some 2 } ()
  in
  Fun.protect ~finally:(fun () -> Server.drain srv) @@ fun () ->
  let path = Path.create [| 6; 6; 6 |] in
  let t ~id ~first ~last ~d =
    Task.make ~id ~first_edge:first ~last_edge:last ~demand:d ~weight:1.0
  in
  let tasks =
    [
      t ~id:0 ~first:0 ~last:1 ~d:4;
      t ~id:1 ~first:1 ~last:2 ~d:4;
      t ~id:2 ~first:0 ~last:2 ~d:3;
      t ~id:3 ~first:2 ~last:2 ~d:6;
    ]
  in
  let inst = Round.Instance.create_exn path tasks in
  let round_solve id =
    Server.handle srv
      (Proto.Round_solve { id; algorithm = "bands"; cache = true; path; tasks })
  in
  (match round_solve 0 with
  | Proto.Round_solved { id = 0; summary; rounds } ->
      Alcotest.(check bool) "fresh" false summary.Proto.r_cached;
      Alcotest.(check int) "rounds attr matches body" (List.length rounds)
        summary.Proto.r_rounds;
      (match Round.Checker.check inst rounds with
      | Ok () -> ()
      | Error m -> Alcotest.failf "round checker: %s" m)
  | _ -> Alcotest.fail "expected round-solved");
  (match round_solve 1 with
  | Proto.Round_solved { summary; _ } ->
      Alcotest.(check bool) "repeat is cached" true summary.Proto.r_cached
  | _ -> Alcotest.fail "expected cached round-solved");
  (* The same instance under plain [solve] must miss: the problem kind is
     part of the fingerprint, so the verbs' cache entries are disjoint. *)
  (match
     Server.handle srv
       (Proto.Solve { id = 2; params = default_params; path; tasks })
   with
  | Proto.Solved { summary; _ } ->
      Alcotest.(check bool) "solve not served round entry" false
        summary.Proto.cached
  | _ -> Alcotest.fail "expected solved");
  (match
     Server.handle srv
       (Proto.Round_solve
          { id = 3; algorithm = "nonsense"; cache = true; path; tasks })
   with
  | Proto.Failed { code = Proto.Unknown_algorithm; _ } -> ()
  | _ -> Alcotest.fail "expected unknown-algorithm");
  (* A task that does not fit any round alone is an invalid instance. *)
  match
    Server.handle srv
      (Proto.Round_solve
         {
           id = 4;
           algorithm = "bands";
           cache = true;
           path;
           tasks = [ t ~id:9 ~first:0 ~last:2 ~d:7 ];
         })
  with
  | Proto.Failed { code = Proto.Bad_request; _ } -> ()
  | _ -> Alcotest.fail "expected bad-request"

let e2e_shutdown_under_load () =
  (* The acceptance property: requests admitted before the shutdown frame
     all complete; requests after it are refused; the ack arrives only
     once the server is quiesced. *)
  let config =
    {
      Server.default_config with
      Server.workers = Some 2;
      queue_capacity = Some 4;
    }
  in
  let srv = Server.create ~config () in
  Fun.protect ~finally:(fun () -> Server.drain srv) @@ fun () ->
  let instances = mixed_instances 10 in
  let pendings =
    List.mapi
      (fun i (path, tasks) ->
        Server.submit srv
          (Proto.Solve { id = i; params = default_params; path; tasks }))
      instances
  in
  let shutdown_pending = Server.submit srv (Proto.Shutdown { id = 100 }) in
  (match shutdown_pending.Server.force () with
  | Proto.Ack { id = 100 } -> ()
  | _ -> Alcotest.fail "expected shutdown ack");
  Alcotest.(check bool) "draining" true (Server.draining srv);
  (* Late request: refused, not lost silently. *)
  (match
     let path, tasks = List.hd instances in
     Server.handle srv
       (Proto.Solve { id = 50; params = default_params; path; tasks })
   with
  | Proto.Failed { code = Proto.Shutting_down; _ } -> ()
  | _ -> Alcotest.fail "expected shutting-down");
  List.iteri
    (fun i p ->
      Alcotest.(check bool) "accepted request completed" true (p.Server.ready ());
      match p.Server.force () with
      | Proto.Solved _ -> ()
      | _ -> Alcotest.failf "request %d lost by drain" i)
    pendings

(* ---------- per-request telemetry ---------- *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let telemetry_histograms_and_log () =
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.disable ();
      Obs.Metrics.reset ())
  @@ fun () ->
  let lines = ref [] in
  let lock = Mutex.create () in
  let log line =
    Mutex.lock lock;
    lines := line :: !lines;
    Mutex.unlock lock
  in
  let srv =
    Server.create
      ~config:
        { Server.default_config with Server.workers = Some 2; log = Some log }
      ()
  in
  Fun.protect ~finally:(fun () -> Server.drain srv) @@ fun () ->
  let path, tasks = Helpers.tiny_instance 3 in
  let solve id =
    Server.handle srv (Proto.Solve { id; params = default_params; path; tasks })
  in
  (match solve 1 with
  | Proto.Solved { summary; _ } ->
      Alcotest.(check bool) "first solve is fresh" false summary.Proto.cached
  | _ -> Alcotest.fail "first solve failed");
  (match solve 2 with
  | Proto.Solved { summary; _ } ->
      Alcotest.(check bool) "second solve cached" true summary.Proto.cached
  | _ -> Alcotest.fail "second solve failed");
  (match Server.handle srv (Proto.Ping { id = 3 }) with
  | Proto.Ack { id = 3 } -> ()
  | _ -> Alcotest.fail "ping failed");
  (match Server.handle srv (Proto.Stats { id = 4 }) with
  | Proto.Stats_reply { stats = Obs.Json.Obj fields; _ } ->
      Alcotest.(check bool) "stats schema v2" true
        (List.assoc_opt "schema" fields
        = Some (Obs.Json.String "sap-server-stats v2"))
  | _ -> Alcotest.fail "stats failed");
  (* Latency histograms: every verb lands in .total, solves split into
     .hit/.miss, and only the fresh solve crosses the queue + solver. *)
  let hist name =
    let snap = Obs.Metrics.snapshot () in
    match List.assoc_opt name snap.Obs.Metrics.histograms with
    | Some h -> h
    | None -> Alcotest.failf "histogram %s missing" name
  in
  let total = hist "server.latency.total" in
  Alcotest.(check int) "total count" 4 total.Obs.Metrics.count;
  Alcotest.(check int) "hit count" 1 (hist "server.latency.total.hit").Obs.Metrics.count;
  Alcotest.(check int) "miss count" 1 (hist "server.latency.total.miss").Obs.Metrics.count;
  Alcotest.(check int) "queue count" 1 (hist "server.latency.queue").Obs.Metrics.count;
  Alcotest.(check int) "solve count" 1 (hist "server.latency.solve").Obs.Metrics.count;
  Alcotest.(check bool) "latencies nonnegative" true (total.Obs.Metrics.min >= 0.0);
  Alcotest.(check bool) "some latency nonzero" true (total.Obs.Metrics.max > 0.0);
  (* Structured log: one line per request, in respond order, with the
     fields docs/SERVER.md promises. *)
  let lines = List.rev !lines in
  Alcotest.(check int) "four log lines" 4 (List.length lines);
  List.iter
    (fun line ->
      List.iter
        (fun key ->
          Alcotest.(check bool)
            (Printf.sprintf "%S in %S" key line)
            true
            (contains_sub line (key ^ "=")))
        [ "ts"; "req"; "id"; "verb"; "status"; "total_ms" ])
    lines;
  let expect i subs =
    let line = List.nth lines i in
    List.iter
      (fun sub ->
        Alcotest.(check bool)
          (Printf.sprintf "%S in line %d" sub i)
          true (contains_sub line sub))
      subs
  in
  expect 0
    [ "verb=solve"; "cache=miss"; "status=solved"; "queue_ms="; "solve_ms=";
      "scheduled="; "weight=" ];
  expect 1 [ "verb=solve"; "cache=hit"; "status=solved" ];
  expect 2 [ "verb=ping"; "status=ack"; "id=3" ];
  expect 3 [ "verb=stats"; "status=stats"; "id=4" ];
  (* Server-assigned request ids are strictly increasing. *)
  let rid line =
    let marker = " req=" in
    let rec find i =
      if i + String.length marker > String.length line then
        Alcotest.failf "no req= in %S" line
      else if String.sub line i (String.length marker) = marker then
        i + String.length marker
      else find (i + 1)
    in
    let start = find 0 in
    let stop = ref start in
    while
      !stop < String.length line && line.[!stop] >= '0' && line.[!stop] <= '9'
    do
      incr stop
    done;
    int_of_string (String.sub line start (!stop - start))
  in
  let rids = List.map rid lines in
  Alcotest.(check bool) "req ids strictly increasing" true
    (List.for_all2 ( < ) (List.filteri (fun i _ -> i < 3) rids) (List.tl rids))

(* ---------- transport over pipes ---------- *)

let with_served_session f =
  let srv =
    Server.create
      ~config:{ Server.default_config with Server.workers = Some 2 } ()
  in
  let req_r, req_w = Unix.pipe ~cloexec:false () in
  let resp_r, resp_w = Unix.pipe ~cloexec:false () in
  let server_domain =
    Domain.spawn (fun () ->
        let ic = Unix.in_channel_of_descr req_r in
        let oc = Unix.out_channel_of_descr resp_w in
        Transport.serve_channels srv ic oc;
        (try flush oc with Sys_error _ -> ());
        (try Unix.close resp_w with Unix.Unix_error _ -> ());
        try Unix.close req_r with Unix.Unix_error _ -> ())
  in
  let result =
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close req_w with Unix.Unix_error _ -> ());
        Domain.join server_domain;
        (try Unix.close resp_r with Unix.Unix_error _ -> ());
        Server.drain srv)
      (fun () -> f ~req_w ~resp_r)
  in
  result

let serve_channels_session () =
  with_served_session (fun ~req_w ~resp_r ->
      let oc = Unix.out_channel_of_descr req_w in
      let ic = Unix.in_channel_of_descr resp_r in
      let path, tasks = Helpers.tiny_instance 11 in
      output_string oc
        (Proto.request_to_string
           (Proto.Solve { id = 0; params = default_params; path; tasks }));
      (* An unparseable frame must not poison the stream. *)
      output_string oc "sap-request v1 zero ping\nend\n";
      output_string oc (Proto.request_to_string (Proto.Ping { id = 2 }));
      output_string oc (Proto.request_to_string (Proto.Stats { id = 3 }));
      flush oc;
      close_out oc;
      let read_line () = try Some (input_line ic) with End_of_file -> None in
      let tasks_for i = if i = 0 then Some tasks else None in
      let rec read_all acc =
        match Proto.read_frame ~read_line with
        | None -> List.rev acc
        | Some lines -> (
            match Proto.response_of_lines ~tasks_for lines with
            | Ok resp -> read_all (resp :: acc)
            | Error m -> Alcotest.failf "bad response frame: %s" m)
      in
      let responses = read_all [] in
      Alcotest.(check int) "four responses" 4 (List.length responses);
      (match responses with
      | [ Proto.Solved { id = 0; solution; _ };
          Proto.Failed { id = -1; code = Proto.Bad_request; _ };
          Proto.Ack { id = 2 };
          Proto.Stats_reply { id = 3; _ } ] ->
          Helpers.assert_feasible_sap path solution
      | _ -> Alcotest.fail "unexpected response sequence"))

let client_batch_over_pipes () =
  with_served_session (fun ~req_w ~resp_r ->
      let oc = Unix.out_channel_of_descr req_w in
      let ic = Unix.in_channel_of_descr resp_r in
      let instances = mixed_instances 6 in
      let result =
        Client.run_batch ~ic ~oc ~params:default_params ~request_stats:true
          ~request_shutdown:true instances
      in
      Alcotest.(check int) "no transport errors" 0
        (List.length result.Client.transport_errors);
      Alcotest.(check bool) "shutdown acked" true result.Client.shutdown_acked;
      Alcotest.(check bool) "stats present" true (result.Client.stats <> None);
      Array.iteri
        (fun i resp ->
          let path, _ = List.nth instances i in
          match resp with
          | Some (Proto.Solved { solution; _ }) ->
              Helpers.assert_feasible_sap path solution
          | _ -> Alcotest.failf "instance %d: no solved response" i)
        result.Client.responses)

(* ---------- unix socket transport ---------- *)

let serve_unix_concurrent_and_stop () =
  let dir = Filename.temp_file "sap_sock" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let socket_path = Filename.concat dir "s.sock" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove socket_path with Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
  @@ fun () ->
  let srv =
    Server.create
      ~config:{ Server.default_config with Server.workers = Some 2 } ()
  in
  let stop = Transport.stopper () in
  let bound = Atomic.make false in
  let server_dom =
    Domain.spawn (fun () ->
        Transport.serve_unix
          ~on_bound:(fun _ -> Atomic.set bound true)
          ~stop srv ~socket_path)
  in
  let rec wait_bound n =
    if not (Atomic.get bound) then
      if n = 0 then Alcotest.fail "server never bound"
      else begin
        Unix.sleepf 0.01;
        wait_bound (n - 1)
      end
  in
  wait_bound 500;
  (* A full session: solve + stats on one connection. *)
  let session i =
    match Client.connect_unix socket_path with
    | Error m -> Alcotest.failf "connect: %s" m
    | Ok fd ->
        Fun.protect
          ~finally:(fun () ->
            try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            let ic = Unix.in_channel_of_descr fd in
            let oc = Unix.out_channel_of_descr fd in
            let path, tasks = Helpers.tiny_instance (100 + i) in
            output_string oc
              (Proto.request_to_string
                 (Proto.Solve { id = i; params = default_params; path; tasks }));
            output_string oc
              (Proto.request_to_string (Proto.Stats { id = 1000 + i }));
            flush oc;
            (* Pipeline-then-half-close, like Client.run_batch.  (Since
               the response pump, half-closing is optional — responses
               flush as they complete — but it remains the batch idiom.) *)
            (try Unix.shutdown fd Unix.SHUTDOWN_SEND
             with Unix.Unix_error _ -> ());
            let read_line () =
              try Some (input_line ic) with End_of_file -> None
            in
            let tasks_for id = if id = i then Some tasks else None in
            let read_resp () =
              match Proto.read_frame ~read_line with
              | None -> Alcotest.failf "session %d: eof before reply" i
              | Some lines -> (
                  match Proto.response_of_lines ~tasks_for lines with
                  | Ok r -> r
                  | Error m -> Alcotest.failf "session %d: %s" i m)
            in
            let first = read_resp () in
            let second = read_resp () in
            (match first with
            | Proto.Solved { id; solution; _ } ->
                Alcotest.(check int) "solve id echoed" i id;
                Helpers.assert_feasible_sap path solution
            | _ -> Alcotest.failf "session %d: expected solved" i);
            match second with
            | Proto.Stats_reply { id; _ } ->
                Alcotest.(check int) "stats id echoed" (1000 + i) id
            | _ -> Alcotest.failf "session %d: expected stats" i)
  in
  (* Two sessions in flight at once: the accept loop must serve both. *)
  let other = Domain.spawn (fun () -> session 1) in
  session 2;
  Domain.join other;
  (* A stop request wakes the idle listener immediately (self-pipe, not
     a poll timeout) and removes the socket. *)
  let t0 = Unix.gettimeofday () in
  Transport.request_stop stop;
  Domain.join server_dom;
  Transport.close_stopper stop;
  Alcotest.(check bool) "stop was prompt" true (Unix.gettimeofday () -. t0 < 2.0);
  Alcotest.(check bool) "socket removed" false (Sys.file_exists socket_path);
  Server.drain srv

let () =
  Alcotest.run "server"
    [
      ( "fingerprint",
        [
          fingerprint_order_invariant;
          fingerprint_problem_kind_separates;
          case "field sensitivity" fingerprint_field_sensitivity;
          case "fnv1a64 vectors" fnv_reference;
        ] );
      ( "cache",
        [
          case "lru eviction order" cache_lru_eviction_order;
          case "add refreshes recency" cache_refresh_on_add;
          case "zero capacity disables" cache_zero_capacity;
        ] );
      ( "pool",
        [
          case "map matches List.map" pool_map_matches_list_map;
          case "exceptions propagate" pool_exception_propagates;
          case "drain loses nothing" pool_drain_loses_nothing;
          case "closed after shutdown" pool_rejects_after_shutdown;
          case "await_until deadline" pool_await_until_deadline;
          case "parallel runner" pool_as_parallel_runner;
          case "runner uninstalled" parallel_runner_uninstalled_on_shutdown;
        ] );
      ( "protocol",
        [
          request_roundtrip;
          response_roundtrip;
          case "rejects malformed" protocol_rejects_malformed;
        ] );
      ( "lifecycle",
        [
          case "concurrent solves + cache hits" e2e_concurrent_solves_and_cache;
          case "error + timeout responses" e2e_error_responses;
          case "round-solve lifecycle + cache separation" e2e_round_solve;
          case "graceful drain under load" e2e_shutdown_under_load;
        ] );
      ( "telemetry",
        [ case "latency histograms + structured log" telemetry_histograms_and_log ] );
      ( "transport",
        [
          case "serve_channels session" serve_channels_session;
          case "client batch over pipes" client_batch_over_pipes;
          case "unix socket: concurrent sessions + stop" serve_unix_concurrent_and_stop;
        ] );
    ]
