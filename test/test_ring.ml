module Ring = Core.Ring

let case = Helpers.case

let random_ring ?(n = 6) seed =
  let prng = Util.Prng.create seed in
  Gen.Ring_gen.random ~prng ~edges:(4 + (seed mod 4)) ~n ~cap_lo:4 ~cap_hi:14
    ~ratio_lo:0.0 ~ratio_hi:0.9

let ring_feasible =
  Helpers.seed_property ~count:30 "ring algorithm output feasible" (fun seed ->
      let r = random_ring seed in
      Result.is_ok (Ring.feasible r (Sap.Ring_algo.solve r)))

let ring_ratio_vs_exact =
  (* Theorem 5's asymptotic bound is 10+eps; with the instantiated Thm 4
     constant (~10) the ring bound is 1 + alpha + eps ~ 11.5. *)
  Helpers.seed_property ~count:15 "ratio <= instantiated Thm 5 bound vs ring exact" (fun seed ->
      let r = random_ring ~n:5 seed in
      let sol = Sap.Ring_algo.solve r in
      let opt = Exact.Ring_brute.value r in
      opt <= 1e-9 || Ring.solution_weight sol >= (opt /. 11.5) -. 1e-9)

let ring_report_takes_better () =
  let r = random_ring 11 in
  let rep = Sap.Ring_algo.solve_report r in
  Alcotest.(check bool) "weight = max(candidates)" true
    (Helpers.close_enough
       (Ring.solution_weight rep.Sap.Ring_algo.solution)
       (Float.max rep.Sap.Ring_algo.path_weight rep.Sap.Ring_algo.through_weight))

let ring_cut_edge_is_min () =
  let caps = [| 9; 3; 7; 8 |] in
  let tk = Ring.make_task ~id:0 ~src:0 ~dst:2 ~demand:2 ~weight:1.0 ~t_edges:4 in
  let r = Ring.create caps [ tk ] in
  let rep = Sap.Ring_algo.solve_report r in
  Alcotest.(check int) "cut at the min-capacity edge" 1 rep.Sap.Ring_algo.cut_edge

let ring_through_candidate_stacks () =
  (* All tasks demand 2, min capacity 6: the knapsack candidate stacks
     three tasks through the cut edge. *)
  let tk id src dst = Ring.make_task ~id ~src ~dst ~demand:2 ~weight:10.0 ~t_edges:4 in
  let r = Ring.create [| 6; 20; 20; 20 |] [ tk 0 3 1; tk 1 3 1; tk 2 3 1; tk 3 3 1 ] in
  let rep = Sap.Ring_algo.solve_report r in
  Alcotest.(check bool) "through weight = 30" true
    (Helpers.close_enough rep.Sap.Ring_algo.through_weight 30.0);
  Helpers.check_ok "solution feasible" (Ring.feasible r rep.Sap.Ring_algo.solution)

let ring_all_tasks_admitted_when_easy () =
  (* Generous capacities: the path candidate should admit everything. *)
  let tk id src dst = Ring.make_task ~id ~src ~dst ~demand:1 ~weight:1.0 ~t_edges:5 in
  let r = Ring.create [| 20; 20; 20; 20; 20 |] [ tk 0 0 2; tk 1 1 3; tk 2 2 4; tk 3 3 0 ] in
  let sol = Sap.Ring_algo.solve r in
  Alcotest.(check int) "all four tasks" 4 (List.length sol);
  Helpers.check_ok "feasible" (Ring.feasible r sol)

let ring_deterministic () =
  let r = random_ring 21 in
  let a = Sap.Ring_algo.solve r in
  let b = Sap.Ring_algo.solve r in
  Alcotest.(check bool) "same result" true
    (Ring.solution_weight a = Ring.solution_weight b && List.length a = List.length b)

let () =
  Alcotest.run "ring"
    [
      ( "algorithm",
        [
          ring_feasible;
          ring_ratio_vs_exact;
          case "takes better candidate" ring_report_takes_better;
          case "cuts min edge" ring_cut_edge_is_min;
          case "through stacks" ring_through_candidate_stacks;
          case "easy admits all" ring_all_tasks_admitted_when_easy;
          case "deterministic" ring_deterministic;
        ] );
    ]
