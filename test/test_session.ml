(* Online sessions: band-local repair semantics (untouched bands
   bit-identical, deterministic repacks), the sap-session v1 wire
   round-trips, and the server's session verbs end to end. *)

module Task = Core.Task
module Path = Core.Path
module Proto = Sap_server.Protocol
module Server = Sap_server.Server
module Session = Sap_server.Session

let case = Helpers.case

(* Two adjacent edges per capacity level — one strip-pack band per
   level, so a single-task delta dirties exactly one band. *)
let levels = [| 4; 8; 16; 32 |]

let banded_path () =
  Path.create
    (Array.concat (List.map (fun c -> [| c; c |]) (Array.to_list levels)))

let banded_task prng ~id ~level =
  let first_edge = 2 * level in
  let last_edge = first_edge + Util.Prng.int prng 2 in
  let demand = 1 + Util.Prng.int prng levels.(level) in
  let weight = 1.0 +. Util.Prng.float prng 99.0 in
  Task.make ~id ~first_edge ~last_edge ~demand ~weight

let banded_instance seed ~per_band =
  let prng = Util.Prng.create seed in
  let path = banded_path () in
  let tasks =
    List.concat
      (List.init (Array.length levels) (fun level ->
           List.init per_band (fun k ->
               banded_task prng ~id:((level * per_band) + k) ~level)))
  in
  (path, tasks)

let create_exn ?seed path tasks =
  match Session.create ?seed path tasks with
  | Ok s -> s
  | Error m -> Alcotest.fail ("session create: " ^ m)

let resolve_exn ?cold sess =
  match Session.resolve ?cold sess with
  | Ok r -> r
  | Error m -> Alcotest.fail ("session resolve: " ^ m)

let placements sol =
  List.map (fun ((j : Task.t), h) -> (j.Task.id, h)) (Core.Solution.sort_by_id sol)

(* ---------- band-local repair ---------- *)

let untouched_bands_bit_identical () =
  let path, tasks = banded_instance 5 ~per_band:6 in
  let sess = create_exn path tasks in
  let sol0, s0 = resolve_exn sess in
  Alcotest.(check int) "all bands repacked" (Array.length levels) s0.Session.repacked;
  (* Delta against the level-0 band only. *)
  let extra =
    Task.make ~id:9000 ~first_edge:0 ~last_edge:1 ~demand:2 ~weight:5.0
  in
  (match Session.add_task sess extra with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let sol1, s1 = resolve_exn sess in
  Alcotest.(check int) "one band repacked" 1 s1.Session.repacked;
  Alcotest.(check int) "rest reused" (Array.length levels - 1) s1.Session.reused;
  Alcotest.(check int) "warm-seeded" 1 s1.Session.warm_seeded;
  (* Tasks outside the touched band keep bit-identical placements. *)
  let outside (id, _) = id >= 6 in
  Alcotest.(check (list (pair int int)))
    "untouched bands identical"
    (List.filter outside (placements sol0))
    (List.filter outside (placements sol1));
  (match Core.Checker.sap_feasible path sol1 with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("checker: " ^ m));
  Session.close sess

let cold_repack_is_pure () =
  (* Placements are a pure function of (seed, band task set): reaching
     the same task set through different delta histories and resolving
     cold yields identical solutions. *)
  let path, tasks = banded_instance 6 ~per_band:5 in
  let a = create_exn ~seed:9 path tasks in
  let _ = resolve_exn a in
  let extra =
    Task.make ~id:7000 ~first_edge:2 ~last_edge:3 ~demand:3 ~weight:4.0
  in
  (match Session.add_task a extra with Ok () -> () | Error m -> Alcotest.fail m);
  let _ = resolve_exn a in
  (match Session.remove_task a 7000 with Ok () -> () | Error m -> Alcotest.fail m);
  let sol_a, _ = resolve_exn ~cold:true a in
  let b = create_exn ~seed:9 path tasks in
  let sol_b, _ = resolve_exn ~cold:true b in
  Alcotest.(check (list (pair int int)))
    "same task set, same cold placements" (placements sol_b) (placements sol_a);
  Session.close a;
  Session.close b

let resolve_without_deltas_reuses_everything () =
  let path, tasks = banded_instance 7 ~per_band:4 in
  let sess = create_exn path tasks in
  let sol0, _ = resolve_exn sess in
  let sol1, s1 = resolve_exn sess in
  Alcotest.(check int) "nothing repacked" 0 s1.Session.repacked;
  Alcotest.(check (list (pair int int)))
    "solution unchanged" (placements sol0) (placements sol1);
  Session.close sess

let delta_validation () =
  let path, tasks = banded_instance 8 ~per_band:3 in
  let sess = create_exn path tasks in
  let dup = List.hd tasks in
  (match Session.add_task sess dup with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate id admitted");
  (match Session.remove_task sess 424242 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown id removed");
  (* Over-demand tasks are admitted but never scheduled. *)
  let whale =
    Task.make ~id:8000 ~first_edge:0 ~last_edge:1 ~demand:1000 ~weight:99.0
  in
  (match Session.add_task sess whale with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let sol, _ = resolve_exn sess in
  Alcotest.(check bool)
    "whale unscheduled" false
    (List.exists (fun ((j : Task.t), _) -> j.Task.id = 8000) sol);
  Session.close sess

(* ---------- wire round-trips ---------- *)

let roundtrip_request req =
  match Proto.request_of_string (Proto.request_to_string req) with
  | Ok r -> r
  | Error m -> Alcotest.fail ("request did not round-trip: " ^ m)

let session_requests_roundtrip () =
  let path = banded_path () in
  let j = Task.make ~id:3 ~first_edge:0 ~last_edge:1 ~demand:2 ~weight:1.5 in
  let open_req = Proto.Session_open { id = 7; seed = 13; path; tasks = [ j ] } in
  (match roundtrip_request open_req with
  | Proto.Session_open { id = 7; seed = 13; tasks = [ j' ]; _ } ->
      Alcotest.(check int) "task id" 3 j'.Task.id
  | _ -> Alcotest.fail "open mangled");
  (match roundtrip_request (Proto.Session_add { id = 8; session = 91; task = j }) with
  | Proto.Session_add { id = 8; session = 91; task } ->
      Alcotest.(check int) "demand" 2 task.Task.demand
  | _ -> Alcotest.fail "add mangled");
  (match
     roundtrip_request (Proto.Session_remove { id = 9; session = 91; task_id = 3 })
   with
  | Proto.Session_remove { id = 9; session = 91; task_id = 3 } -> ()
  | _ -> Alcotest.fail "remove mangled");
  (match
     roundtrip_request (Proto.Session_resolve { id = 10; session = 91; cold = true })
   with
  | Proto.Session_resolve { id = 10; session = 91; cold = true } -> ()
  | _ -> Alcotest.fail "resolve mangled");
  match roundtrip_request (Proto.Session_close { id = 11; session = 91 }) with
  | Proto.Session_close { id = 11; session = 91 } -> ()
  | _ -> Alcotest.fail "close mangled"

let session_reply_roundtrip () =
  let j = Task.make ~id:4 ~first_edge:2 ~last_edge:3 ~demand:3 ~weight:2.5 in
  let summary =
    {
      Proto.s_tasks = 5;
      s_scheduled = 4;
      s_weight = 17.25;
      s_bands = 3;
      s_repacked = 1;
      s_reused = 2;
      s_warm = 1;
      s_time_ms = 0.75;
    }
  in
  let reply =
    Proto.Session_reply
      {
        id = 12;
        session = 91;
        event = Proto.Sess_resolved;
        summary = Some summary;
        solution = [ (j, 6) ];
      }
  in
  let tasks_for id = if id = 12 then Some [ j ] else None in
  (match Proto.response_of_string ~tasks_for (Proto.response_to_string reply) with
  | Ok
      (Proto.Session_reply
        { id = 12; session = 91; event = Proto.Sess_resolved; summary = Some s; solution })
    ->
      Alcotest.(check int) "tasks" 5 s.Proto.s_tasks;
      Alcotest.(check int) "warm" 1 s.Proto.s_warm;
      Alcotest.(check bool) "weight" true
        (Helpers.close_enough s.Proto.s_weight 17.25);
      (match solution with
      | [ (j', 6) ] -> Alcotest.(check int) "placed id" 4 j'.Task.id
      | _ -> Alcotest.fail "solution body mangled")
  | Ok _ -> Alcotest.fail "resolved reply mangled"
  | Error m -> Alcotest.fail m);
  let ack =
    Proto.Session_reply
      { id = 13; session = 91; event = Proto.Sess_ack; summary = None; solution = [] }
  in
  match Proto.response_of_string ~tasks_for (Proto.response_to_string ack) with
  | Ok
      (Proto.Session_reply
        { id = 13; session = 91; event = Proto.Sess_ack; summary = None; solution = [] })
    ->
      ()
  | Ok _ -> Alcotest.fail "ack mangled"
  | Error m -> Alcotest.fail m

(* ---------- server end to end ---------- *)

let server_session_lifecycle () =
  let path, tasks = banded_instance 10 ~per_band:4 in
  let srv =
    Server.create
      ~config:{ Server.default_config with Server.workers = Some 2 }
      ()
  in
  Fun.protect ~finally:(fun () -> Server.drain srv) @@ fun () ->
  let force req = (Server.submit srv req).Server.force () in
  let sid =
    match force (Proto.Session_open { id = 0; seed = 3; path; tasks }) with
    | Proto.Session_reply
        { session; event = Proto.Sess_opened; summary = Some s; solution; _ } ->
        Alcotest.(check int) "base tasks" (List.length tasks) s.Proto.s_tasks;
        (match Core.Checker.sap_feasible path solution with
        | Ok () -> ()
        | Error m -> Alcotest.fail ("open solution: " ^ m));
        session
    | _ -> Alcotest.fail "open did not return an opened reply"
  in
  let extra =
    Task.make ~id:5000 ~first_edge:0 ~last_edge:0 ~demand:1 ~weight:3.0
  in
  (match force (Proto.Session_add { id = 1; session = sid; task = extra }) with
  | Proto.Session_reply { event = Proto.Sess_ack; session; _ } ->
      Alcotest.(check int) "ack session" sid session
  | _ -> Alcotest.fail "add not acked");
  (match force (Proto.Session_resolve { id = 2; session = sid; cold = false }) with
  | Proto.Session_reply
      { event = Proto.Sess_resolved; summary = Some s; solution; _ } ->
      Alcotest.(check int) "one band repacked" 1 s.Proto.s_repacked;
      Alcotest.(check int) "warm-seeded" 1 s.Proto.s_warm;
      (match Core.Checker.sap_feasible path solution with
      | Ok () -> ()
      | Error m -> Alcotest.fail ("resolve solution: " ^ m))
  | _ -> Alcotest.fail "resolve did not resolve");
  (match force (Proto.Session_remove { id = 3; session = sid; task_id = 5000 }) with
  | Proto.Session_reply { event = Proto.Sess_ack; _ } -> ()
  | _ -> Alcotest.fail "remove not acked");
  (match force (Proto.Session_close { id = 4; session = sid }) with
  | Proto.Session_reply { event = Proto.Sess_closed; _ } -> ()
  | _ -> Alcotest.fail "close not acked");
  match force (Proto.Session_resolve { id = 5; session = sid; cold = false }) with
  | Proto.Failed { code = Proto.Unknown_session; _ } -> ()
  | _ -> Alcotest.fail "resolve after close should fail with unknown-session"

let server_unknown_session () =
  let srv =
    Server.create
      ~config:{ Server.default_config with Server.workers = Some 1 }
      ()
  in
  Fun.protect ~finally:(fun () -> Server.drain srv) @@ fun () ->
  match
    (Server.submit srv (Proto.Session_remove { id = 0; session = 123456; task_id = 1 }))
      .Server.force ()
  with
  | Proto.Failed { code = Proto.Unknown_session; _ } -> ()
  | _ -> Alcotest.fail "expected unknown-session"

let () =
  Alcotest.run "session"
    [
      ( "repair",
        [
          case "untouched bands bit-identical" untouched_bands_bit_identical;
          case "cold repack is pure" cold_repack_is_pure;
          case "no deltas, no repacks" resolve_without_deltas_reuses_everything;
          case "delta validation" delta_validation;
        ] );
      ( "wire",
        [
          case "session requests round-trip" session_requests_roundtrip;
          case "session replies round-trip" session_reply_roundtrip;
        ] );
      ( "server",
        [
          case "lifecycle end to end" server_session_lifecycle;
          case "unknown session" server_unknown_session;
        ] );
    ]
