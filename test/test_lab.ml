(* The ratio lab: branch-and-bound vs the brute oracles, corpus
   round-trips, and the ratio pipeline's bound gate. *)

module Task = Core.Task
module Path = Core.Path
module Ring = Core.Ring

let case = Helpers.case

(* ---------- Exact_bb vs Sap_brute ---------- *)

let bb_matches_brute =
  Helpers.seed_property ~count:80 "Exact_bb value = Sap_brute value" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:10 seed in
      let out = Lab.Exact_bb.solve path tasks in
      if not out.Lab.Exact_bb.optimal then
        QCheck.Test.fail_report "tiny instance exhausted the node budget";
      Helpers.assert_feasible_sap path out.Lab.Exact_bb.solution;
      Helpers.close_enough out.Lab.Exact_bb.value (Exact.Sap_brute.value path tasks))

let bb_matches_brute_pooled =
  Helpers.seed_property ~count:20 "pooled Exact_bb value = Sap_brute value"
    (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:10 seed in
      let pool = Sap_server.Pool.create ~workers:3 () in
      Fun.protect
        ~finally:(fun () -> Sap_server.Pool.shutdown pool)
        (fun () ->
          let out = Lab.Exact_bb.solve ~pool path tasks in
          Helpers.assert_feasible_sap path out.Lab.Exact_bb.solution;
          Helpers.close_enough out.Lab.Exact_bb.value
            (Exact.Sap_brute.value path tasks)))

let bb_ring_matches_brute =
  Helpers.seed_property ~count:40 "Exact_bb.solve_ring value = Ring_brute value"
    (fun seed ->
      let prng = Util.Prng.create seed in
      let r =
        Gen.Ring_gen.random ~prng
          ~edges:(4 + (seed mod 3))
          ~n:(2 + (seed mod 4))
          ~cap_lo:4 ~cap_hi:12 ~ratio_lo:0.0 ~ratio_hi:0.9
      in
      let out = Lab.Exact_bb.solve_ring r in
      Helpers.check_ok "bb ring solution feasible"
        (Ring.feasible r out.Lab.Exact_bb.ring_solution);
      Helpers.close_enough out.Lab.Exact_bb.ring_value
        (Exact.Ring_brute.value r))

let bb_budget_reports_nonoptimal () =
  let path, tasks = Helpers.tiny_instance ~max_tasks:10 3 in
  let out = Lab.Exact_bb.solve ~max_nodes:2 path tasks in
  Alcotest.(check bool) "budget exhausted" false out.Lab.Exact_bb.optimal;
  Alcotest.(check bool) "upper bound above incumbent" true
    (out.Lab.Exact_bb.upper_bound >= out.Lab.Exact_bb.value -. 1e-9);
  Helpers.assert_feasible_sap path out.Lab.Exact_bb.solution

(* ---------- oracle guards ---------- *)

let over_cap_tasks path n =
  List.init n (fun i ->
      Task.make ~id:i ~first_edge:0
        ~last_edge:(Path.num_edges path - 1)
        ~demand:1 ~weight:1.0)

let brute_guard_trips () =
  let path = Path.uniform ~edges:3 ~capacity:50 in
  let tasks = over_cap_tasks path (Exact.Sap_brute.task_cap + 1) in
  Alcotest.check_raises "solve guard"
    (Invalid_argument
       (Printf.sprintf
          "Exact.Sap_brute.solve: %d tasks exceed the exhaustive-search cap \
           of %d (use Lab.Exact_bb for larger instances)"
          (Exact.Sap_brute.task_cap + 1)
          Exact.Sap_brute.task_cap))
    (fun () -> ignore (Exact.Sap_brute.solve path tasks))

let ring_guard_trips () =
  let m = 4 in
  let n = Exact.Ring_brute.task_cap + 1 in
  let tasks =
    List.init n (fun id ->
        Ring.make_task ~id ~src:0 ~dst:2 ~demand:1 ~weight:1.0 ~t_edges:m)
  in
  let r = Ring.create (Array.make m 50) tasks in
  Alcotest.check_raises "ring solve guard"
    (Invalid_argument
       (Printf.sprintf
          "Exact.Ring_brute.solve: %d tasks exceed the exhaustive-search cap \
           of %d (use Lab.Exact_bb.solve_ring for larger instances)"
          n Exact.Ring_brute.task_cap))
    (fun () -> ignore (Exact.Ring_brute.solve r))

(* The symmetry cut must not change oracle answers: instances made of
   identical-task stacks still solve to the obvious optimum. *)
let brute_symmetry_still_optimal () =
  let path = Path.uniform ~edges:4 ~capacity:6 in
  let tasks =
    List.init 8 (fun id ->
        Task.make ~id ~first_edge:0 ~last_edge:3 ~demand:2 ~weight:5.0)
  in
  (* Capacity 6, demand 2 each: exactly 3 fit. *)
  Alcotest.(check (float 1e-9)) "3 stacked" 15.0 (Exact.Sap_brute.value path tasks)

(* The acceptance instance class: 40 tasks is far past the brute guard,
   yet the branch and bound certifies optimality in well under a second. *)
let bb_solves_beyond_brute () =
  let prng = Util.Prng.create 11 in
  let path = Gen.Profiles.uniform ~edges:8 ~capacity:6 in
  let tasks = Gen.Workloads.mixed_tasks ~prng ~path ~n:40 () in
  (try
     ignore (Exact.Sap_brute.solve path tasks);
     Alcotest.fail "Sap_brute accepted 40 tasks"
   with Invalid_argument _ -> ());
  let out = Lab.Exact_bb.solve path tasks in
  Alcotest.(check bool) "optimal at 40 tasks" true out.Lab.Exact_bb.optimal;
  Helpers.assert_feasible_sap path out.Lab.Exact_bb.solution;
  Alcotest.(check bool) "value matches its certificate" true
    (Helpers.close_enough out.Lab.Exact_bb.value out.Lab.Exact_bb.upper_bound)

(* ---------- corpus ---------- *)

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sap-lab-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let corpus_roundtrip () =
  with_tmp_dir (fun dir ->
      let t = Lab.Corpus.generate ~dir ~seed:5 ~variants:1 () in
      Alcotest.(check int) "one instance per family"
        (List.length Lab.Corpus.families)
        (List.length t.Lab.Corpus.entries);
      match Lab.Corpus.load ~dir with
      | Error m -> Alcotest.failf "load: %s" m
      | Ok t' ->
          Alcotest.(check int) "seed survives" 5 t'.Lab.Corpus.seed;
          Alcotest.(check int) "entries survive"
            (List.length t.Lab.Corpus.entries)
            (List.length t'.Lab.Corpus.entries);
          List.iter
            (fun e ->
              match Lab.Corpus.read t' e with
              | Ok (Lab.Corpus.Path_instance (path, tasks)) ->
                  Alcotest.(check bool)
                    (e.Lab.Corpus.file ^ " parses to tasks")
                    true
                    (Core.Path.num_edges path > 0 && tasks <> [])
              | Ok (Lab.Corpus.Ring_instance r) ->
                  Alcotest.(check bool)
                    (e.Lab.Corpus.file ^ " parses to ring tasks")
                    true
                    (Array.length r.Ring.tasks > 0)
              | Error m -> Alcotest.failf "%s: %s" e.Lab.Corpus.file m)
            t'.Lab.Corpus.entries)

let corpus_deterministic () =
  with_tmp_dir (fun dir1 ->
      with_tmp_dir (fun dir2' ->
          let dir2 = dir2' ^ "-b" in
          let t1 = Lab.Corpus.generate ~dir:dir1 ~seed:9 ~variants:1 () in
          let t2 = Lab.Corpus.generate ~dir:dir2 ~seed:9 ~variants:1 () in
          Fun.protect
            ~finally:(fun () ->
              List.iter
                (fun e -> Sys.remove (Filename.concat dir2 e.Lab.Corpus.file))
                t2.Lab.Corpus.entries;
              Sys.remove (Filename.concat dir2 Lab.Corpus.manifest_file);
              Unix.rmdir dir2)
            (fun () ->
              List.iter2
                (fun e1 e2 ->
                  let read t e =
                    Sap_io.Instance_io.read_file
                      (Filename.concat t.Lab.Corpus.dir e.Lab.Corpus.file)
                  in
                  Alcotest.(check string)
                    (e1.Lab.Corpus.file ^ " reproducible")
                    (read t1 e1) (read t2 e2))
                t1.Lab.Corpus.entries t2.Lab.Corpus.entries)))

(* ---------- the ratio pipeline ---------- *)

let ratio_run_respects_bounds () =
  with_tmp_dir (fun dir ->
      let t = Lab.Corpus.generate ~dir ~seed:3 ~variants:1 () in
      let report = Lab.Ratio.run t in
      Alcotest.(check int) "no bound violations" 0 report.Lab.Ratio.violations;
      Alcotest.(check int) "no oracle disagreements" 0
        report.Lab.Ratio.disagreements;
      (* Every algorithm appears, and every measured exact ratio is at
         least 1 (the oracle is an upper bound on any feasible weight). *)
      List.iter
        (fun alg ->
          Alcotest.(check bool) (alg ^ " measured") true
            (List.exists
               (fun m -> m.Lab.Ratio.alg = alg)
               report.Lab.Ratio.measurements))
        [ "small"; "medium"; "large"; "combine"; "ring" ];
      List.iter
        (fun m ->
          match (m.Lab.Ratio.bound_kind, m.Lab.Ratio.ratio) with
          | Lab.Ratio.Exact_opt, Some r ->
              Alcotest.(check bool)
                (m.Lab.Ratio.file ^ "/" ^ m.Lab.Ratio.alg ^ " ratio >= 1")
                true (r >= 1.0 -. 1e-9)
          | _ -> ())
        report.Lab.Ratio.measurements;
      (* bb-stress rows really exercised the post-guard regime. *)
      Alcotest.(check bool) "bb-stress measured exactly" true
        (List.exists
           (fun m ->
             m.Lab.Ratio.family = "bb-stress"
             && m.Lab.Ratio.alg = "combine"
             && m.Lab.Ratio.bound_kind = Lab.Ratio.Exact_opt
             && m.Lab.Ratio.subset_size > Exact.Sap_brute.task_cap)
           report.Lab.Ratio.measurements))

let ratio_budget_degrades_to_lp () =
  with_tmp_dir (fun dir ->
      let t = Lab.Corpus.generate ~dir ~seed:3 ~variants:1 () in
      let bb_stress =
        {
          t with
          Lab.Corpus.entries =
            List.filter
              (fun e -> e.Lab.Corpus.family = "bb-stress")
              t.Lab.Corpus.entries;
        }
      in
      let report = Lab.Ratio.run ~max_nodes:50 bb_stress in
      let combine_row =
        List.find
          (fun m -> m.Lab.Ratio.alg = "combine")
          report.Lab.Ratio.measurements
      in
      Alcotest.(check bool) "degraded to lp" true
        (combine_row.Lab.Ratio.bound_kind = Lab.Ratio.Lp_opt);
      Alcotest.(check bool) "lp rows never gate" true
        combine_row.Lab.Ratio.within_bound;
      Alcotest.(check int) "no violations from lp rows" 0
        report.Lab.Ratio.violations)

let ratio_json_schema () =
  with_tmp_dir (fun dir ->
      let t = Lab.Corpus.generate ~dir ~seed:3 ~variants:1 () in
      let report = Lab.Ratio.run t in
      let json = Lab.Ratio.report_json report in
      (* Must round-trip through the parser and carry the v1 envelope. *)
      match Obs.Json.of_string (Obs.Json.to_string json) with
      | Error m -> Alcotest.failf "report JSON does not re-parse: %s" m
      | Ok (Obs.Json.Obj fields) ->
          Alcotest.(check bool) "schema tag" true
            (List.assoc_opt "schema" fields
            = Some (Obs.Json.String "sap-ratio v1"));
          List.iter
            (fun k ->
              Alcotest.(check bool) (k ^ " present") true
                (List.mem_assoc k fields))
            [ "corpus"; "config"; "measurements"; "summary"; "violations";
              "disagreements" ]
      | Ok _ -> Alcotest.fail "report JSON is not an object")

(* ---------- Combine.audit bound_kind ---------- *)

let audit_records_bound_kind () =
  let path, tasks = Helpers.tiny_instance ~max_tasks:8 17 in
  let r = Sap.Combine.solve_report path tasks in
  let lp_audit = Sap.Combine.audit path tasks r in
  Alcotest.(check bool) "default is lp" true
    (lp_audit.Sap.Combine.bound_kind = Sap.Combine.Lp_bound);
  let opt = Lab.Exact_bb.value path tasks in
  let exact_audit = Sap.Combine.audit ~exact_optimum:opt path tasks r in
  Alcotest.(check bool) "exact_optimum tags Exact_bound" true
    (exact_audit.Sap.Combine.bound_kind = Sap.Combine.Exact_bound);
  Alcotest.(check (float 1e-9)) "upper bound is the optimum" opt
    exact_audit.Sap.Combine.upper_bound;
  (* The JSON vocabulary the reports use. *)
  let has_kv json k v =
    match json with
    | Obs.Json.Obj fields -> List.assoc_opt k fields = Some (Obs.Json.String v)
    | _ -> false
  in
  Alcotest.(check bool) "json bound_kind lp" true
    (has_kv (Sap.Combine.audit_json lp_audit) "bound_kind" "lp");
  Alcotest.(check bool) "json bound_kind exact" true
    (has_kv (Sap.Combine.audit_json exact_audit) "bound_kind" "exact")

let run () =
  Alcotest.run "lab"
    [
      ( "exact_bb",
        [
          bb_matches_brute;
          bb_matches_brute_pooled;
          bb_ring_matches_brute;
          case "budget reports nonoptimal" bb_budget_reports_nonoptimal;
        ] );
      ( "oracle guards",
        [
          case "sap_brute guard" brute_guard_trips;
          case "ring_brute guard" ring_guard_trips;
          case "symmetry cut optimal" brute_symmetry_still_optimal;
          case "40 tasks beyond the guard" bb_solves_beyond_brute;
        ] );
      ( "corpus",
        [
          case "round trip" corpus_roundtrip;
          case "deterministic" corpus_deterministic;
        ] );
      ( "ratio",
        [
          case "bounds hold on seeded corpus" ratio_run_respects_bounds;
          case "budget degrades to lp" ratio_budget_degrades_to_lp;
          case "sap-ratio v1 schema" ratio_json_schema;
        ] );
      ( "audit",
        [ case "bound_kind recorded" audit_records_bound_kind ] );
    ]

let () = run ()
