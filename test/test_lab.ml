(* The ratio lab: branch-and-bound vs the brute oracles, corpus
   round-trips, and the ratio pipeline's bound gate. *)

module Task = Core.Task
module Path = Core.Path
module Ring = Core.Ring

let case = Helpers.case

(* ---------- Exact_bb vs Sap_brute ---------- *)

let bb_matches_brute =
  Helpers.seed_property ~count:80 "Exact_bb value = Sap_brute value" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:10 seed in
      let out = Lab.Exact_bb.solve path tasks in
      if not out.Lab.Exact_bb.optimal then
        QCheck.Test.fail_report "tiny instance exhausted the node budget";
      Helpers.assert_feasible_sap path out.Lab.Exact_bb.solution;
      Helpers.close_enough out.Lab.Exact_bb.value (Exact.Sap_brute.value path tasks))

let bb_matches_brute_pooled =
  Helpers.seed_property ~count:20 "pooled Exact_bb value = Sap_brute value"
    (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:10 seed in
      let pool = Sap_server.Pool.create ~workers:3 () in
      Fun.protect
        ~finally:(fun () -> Sap_server.Pool.shutdown pool)
        (fun () ->
          let out = Lab.Exact_bb.solve ~pool path tasks in
          Helpers.assert_feasible_sap path out.Lab.Exact_bb.solution;
          Helpers.close_enough out.Lab.Exact_bb.value
            (Exact.Sap_brute.value path tasks)))

let bb_ring_matches_brute =
  Helpers.seed_property ~count:40 "Exact_bb.solve_ring value = Ring_brute value"
    (fun seed ->
      let prng = Util.Prng.create seed in
      let r =
        Gen.Ring_gen.random ~prng
          ~edges:(4 + (seed mod 3))
          ~n:(2 + (seed mod 4))
          ~cap_lo:4 ~cap_hi:12 ~ratio_lo:0.0 ~ratio_hi:0.9
      in
      let out = Lab.Exact_bb.solve_ring r in
      Helpers.check_ok "bb ring solution feasible"
        (Ring.feasible r out.Lab.Exact_bb.ring_solution);
      Helpers.close_enough out.Lab.Exact_bb.ring_value
        (Exact.Ring_brute.value r))

let bb_budget_reports_nonoptimal () =
  let path, tasks = Helpers.tiny_instance ~max_tasks:10 3 in
  let out = Lab.Exact_bb.solve ~max_nodes:2 path tasks in
  Alcotest.(check bool) "budget exhausted" false out.Lab.Exact_bb.optimal;
  Alcotest.(check bool) "upper bound above incumbent" true
    (out.Lab.Exact_bb.upper_bound >= out.Lab.Exact_bb.value -. 1e-9);
  Helpers.assert_feasible_sap path out.Lab.Exact_bb.solution

(* A tiny palette of footprints and weights, so exact-duplicate and
   near-duplicate tasks abound — the regime where the symmetry cut and
   the dominated-state memo interact.  Promoted from an offline sweep of
   seeds 0..20000 (0 mismatches); the committed test keeps the first 2000
   seeds of the same generator. *)
let bb_brute_palette_sweep () =
  for seed = 0 to 1999 do
    let prng = Util.Prng.create seed in
    let edges = 2 + Util.Prng.int prng 2 in
    let cap = 3 + Util.Prng.int prng 3 in
    let path = Gen.Profiles.uniform ~edges ~capacity:cap in
    let n = 4 + Util.Prng.int prng 5 in
    let tasks =
      List.init n (fun id ->
          let first_edge = Util.Prng.int prng edges in
          let last_edge = first_edge + Util.Prng.int prng (edges - first_edge) in
          let demand = 1 + Util.Prng.int prng 2 in
          let weight = [| 2.0; 3.0; 5.0 |].(Util.Prng.int prng 3) in
          Task.make ~id ~first_edge ~last_edge ~demand ~weight)
    in
    let bb = Lab.Exact_bb.solve path tasks in
    if not bb.Lab.Exact_bb.optimal then
      Alcotest.failf "seed %d: palette instance exhausted the node budget" seed;
    let brute = Exact.Sap_brute.value path tasks in
    if Float.abs (bb.Lab.Exact_bb.value -. brute) > 1e-6 then
      Alcotest.failf "seed %d: bb %.6f <> brute %.6f" seed
        bb.Lab.Exact_bb.value brute
  done

(* ---------- oracle guards ---------- *)

let over_cap_tasks path n =
  List.init n (fun i ->
      Task.make ~id:i ~first_edge:0
        ~last_edge:(Path.num_edges path - 1)
        ~demand:1 ~weight:1.0)

let brute_guard_trips () =
  let path = Path.uniform ~edges:3 ~capacity:50 in
  let tasks = over_cap_tasks path (Exact.Sap_brute.task_cap + 1) in
  Alcotest.check_raises "solve guard"
    (Invalid_argument
       (Printf.sprintf
          "Exact.Sap_brute.solve: %d tasks exceed the exhaustive-search cap \
           of %d (use Lab.Exact_bb for larger instances)"
          (Exact.Sap_brute.task_cap + 1)
          Exact.Sap_brute.task_cap))
    (fun () -> ignore (Exact.Sap_brute.solve path tasks))

let ring_guard_trips () =
  let m = 4 in
  let n = Exact.Ring_brute.task_cap + 1 in
  let tasks =
    List.init n (fun id ->
        Ring.make_task ~id ~src:0 ~dst:2 ~demand:1 ~weight:1.0 ~t_edges:m)
  in
  let r = Ring.create (Array.make m 50) tasks in
  Alcotest.check_raises "ring solve guard"
    (Invalid_argument
       (Printf.sprintf
          "Exact.Ring_brute.solve: %d tasks exceed the exhaustive-search cap \
           of %d (use Lab.Exact_bb.solve_ring for larger instances)"
          n Exact.Ring_brute.task_cap))
    (fun () -> ignore (Exact.Ring_brute.solve r))

(* The symmetry cut must not change oracle answers: instances made of
   identical-task stacks still solve to the obvious optimum. *)
let brute_symmetry_still_optimal () =
  let path = Path.uniform ~edges:4 ~capacity:6 in
  let tasks =
    List.init 8 (fun id ->
        Task.make ~id ~first_edge:0 ~last_edge:3 ~demand:2 ~weight:5.0)
  in
  (* Capacity 6, demand 2 each: exactly 3 fit. *)
  Alcotest.(check (float 1e-9)) "3 stacked" 15.0 (Exact.Sap_brute.value path tasks)

(* The acceptance instance class: 40 tasks is far past the brute guard,
   yet the branch and bound certifies optimality in well under a second. *)
let bb_solves_beyond_brute () =
  let prng = Util.Prng.create 11 in
  let path = Gen.Profiles.uniform ~edges:8 ~capacity:6 in
  let tasks = Gen.Workloads.mixed_tasks ~prng ~path ~n:40 () in
  (try
     ignore (Exact.Sap_brute.solve path tasks);
     Alcotest.fail "Sap_brute accepted 40 tasks"
   with Invalid_argument _ -> ());
  let out = Lab.Exact_bb.solve path tasks in
  Alcotest.(check bool) "optimal at 40 tasks" true out.Lab.Exact_bb.optimal;
  Helpers.assert_feasible_sap path out.Lab.Exact_bb.solution;
  Alcotest.(check bool) "value matches its certificate" true
    (Helpers.close_enough out.Lab.Exact_bb.value out.Lab.Exact_bb.upper_bound)

(* ---------- corpus ---------- *)

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sap-lab-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let corpus_roundtrip () =
  with_tmp_dir (fun dir ->
      let t = Lab.Corpus.generate ~dir ~seed:5 ~variants:1 () in
      Alcotest.(check int) "one instance per family"
        (List.length Lab.Corpus.families)
        (List.length t.Lab.Corpus.entries);
      match Lab.Corpus.load ~dir with
      | Error m -> Alcotest.failf "load: %s" m
      | Ok t' ->
          Alcotest.(check int) "seed survives" 5 t'.Lab.Corpus.seed;
          Alcotest.(check int) "entries survive"
            (List.length t.Lab.Corpus.entries)
            (List.length t'.Lab.Corpus.entries);
          List.iter
            (fun e ->
              match Lab.Corpus.read t' e with
              | Ok (Lab.Corpus.Path_instance (path, tasks)) ->
                  Alcotest.(check bool)
                    (e.Lab.Corpus.file ^ " parses to tasks")
                    true
                    (Core.Path.num_edges path > 0 && tasks <> [])
              | Ok (Lab.Corpus.Ring_instance r) ->
                  Alcotest.(check bool)
                    (e.Lab.Corpus.file ^ " parses to ring tasks")
                    true
                    (Array.length r.Ring.tasks > 0)
              | Ok (Lab.Corpus.Round_instance i) ->
                  Alcotest.(check bool)
                    (e.Lab.Corpus.file ^ " parses to round tasks")
                    true
                    (Round.Instance.task_count i > 0)
              | Error m -> Alcotest.failf "%s: %s" e.Lab.Corpus.file m)
            t'.Lab.Corpus.entries)

let corpus_deterministic () =
  with_tmp_dir (fun dir1 ->
      with_tmp_dir (fun dir2' ->
          let dir2 = dir2' ^ "-b" in
          let t1 = Lab.Corpus.generate ~dir:dir1 ~seed:9 ~variants:1 () in
          let t2 = Lab.Corpus.generate ~dir:dir2 ~seed:9 ~variants:1 () in
          Fun.protect
            ~finally:(fun () ->
              List.iter
                (fun e -> Sys.remove (Filename.concat dir2 e.Lab.Corpus.file))
                t2.Lab.Corpus.entries;
              Sys.remove (Filename.concat dir2 Lab.Corpus.manifest_file);
              Unix.rmdir dir2)
            (fun () ->
              List.iter2
                (fun e1 e2 ->
                  let read t e =
                    Sap_io.Instance_io.read_file
                      (Filename.concat t.Lab.Corpus.dir e.Lab.Corpus.file)
                  in
                  Alcotest.(check string)
                    (e1.Lab.Corpus.file ^ " reproducible")
                    (read t1 e1) (read t2 e2))
                t1.Lab.Corpus.entries t2.Lab.Corpus.entries)))

(* ---------- the ratio pipeline ---------- *)

let ratio_run_respects_bounds () =
  with_tmp_dir (fun dir ->
      let t = Lab.Corpus.generate ~dir ~seed:3 ~variants:1 () in
      let report = Lab.Ratio.run t in
      Alcotest.(check int) "no bound violations" 0 report.Lab.Ratio.violations;
      Alcotest.(check int) "no oracle disagreements" 0
        report.Lab.Ratio.disagreements;
      (* Every algorithm appears, and every measured exact ratio is at
         least 1 (the oracle is an upper bound on any feasible weight). *)
      List.iter
        (fun alg ->
          Alcotest.(check bool) (alg ^ " measured") true
            (List.exists
               (fun m -> m.Lab.Ratio.alg = alg)
               report.Lab.Ratio.measurements))
        [ "small"; "medium"; "large"; "combine"; "ring" ];
      List.iter
        (fun m ->
          match (m.Lab.Ratio.bound_kind, m.Lab.Ratio.ratio) with
          | Lab.Ratio.Exact_opt, Some r ->
              Alcotest.(check bool)
                (m.Lab.Ratio.file ^ "/" ^ m.Lab.Ratio.alg ^ " ratio >= 1")
                true (r >= 1.0 -. 1e-9)
          | _ -> ())
        report.Lab.Ratio.measurements;
      (* bb-stress rows really exercised the post-guard regime. *)
      Alcotest.(check bool) "bb-stress measured exactly" true
        (List.exists
           (fun m ->
             m.Lab.Ratio.family = "bb-stress"
             && m.Lab.Ratio.alg = "combine"
             && m.Lab.Ratio.bound_kind = Lab.Ratio.Exact_opt
             && m.Lab.Ratio.subset_size > Exact.Sap_brute.task_cap)
           report.Lab.Ratio.measurements))

let ratio_budget_degrades_to_lp () =
  with_tmp_dir (fun dir ->
      let t = Lab.Corpus.generate ~dir ~seed:3 ~variants:1 () in
      let bb_stress =
        {
          t with
          Lab.Corpus.entries =
            List.filter
              (fun e -> e.Lab.Corpus.family = "bb-stress")
              t.Lab.Corpus.entries;
        }
      in
      let report = Lab.Ratio.run ~max_nodes:50 bb_stress in
      let combine_row =
        List.find
          (fun m -> m.Lab.Ratio.alg = "combine")
          report.Lab.Ratio.measurements
      in
      Alcotest.(check bool) "degraded to lp" true
        (combine_row.Lab.Ratio.bound_kind = Lab.Ratio.Lp_opt);
      Alcotest.(check bool) "lp rows never gate" true
        combine_row.Lab.Ratio.within_bound;
      Alcotest.(check int) "no violations from lp rows" 0
        report.Lab.Ratio.violations)

let ratio_json_schema () =
  with_tmp_dir (fun dir ->
      let t = Lab.Corpus.generate ~dir ~seed:3 ~variants:1 () in
      let report = Lab.Ratio.run t in
      let json = Lab.Ratio.report_json report in
      (* Must round-trip through the parser and carry the v1 envelope. *)
      match Obs.Json.of_string (Obs.Json.to_string json) with
      | Error m -> Alcotest.failf "report JSON does not re-parse: %s" m
      | Ok (Obs.Json.Obj fields) ->
          Alcotest.(check bool) "schema tag" true
            (List.assoc_opt "schema" fields
            = Some (Obs.Json.String "sap-ratio v1"));
          List.iter
            (fun k ->
              Alcotest.(check bool) (k ^ " present") true
                (List.mem_assoc k fields))
            [ "corpus"; "config"; "measurements"; "summary"; "families";
              "violations"; "disagreements" ]
      | Ok _ -> Alcotest.fail "report JSON is not an object")

(* The per-family breakdown: every (family, alg) pair seen in the
   measurements gets exactly one row, the rows partition the
   measurements, and the JSON rows carry the pinned key set. *)
let ratio_family_breakdown () =
  with_tmp_dir (fun dir ->
      let t = Lab.Corpus.generate ~dir ~seed:3 ~variants:2 () in
      let report = Lab.Ratio.run t in
      let fams = report.Lab.Ratio.families in
      Alcotest.(check bool) "breakdown is non-empty" true (fams <> []);
      let pairs =
        List.map (fun f -> (f.Lab.Ratio.f_family, f.Lab.Ratio.f_alg)) fams
      in
      Alcotest.(check bool) "no duplicate (family, alg) rows" true
        (List.length pairs = List.length (List.sort_uniq compare pairs));
      List.iter
        (fun m ->
          Alcotest.(check bool)
            (Printf.sprintf "row for %s/%s" m.Lab.Ratio.family m.Lab.Ratio.alg)
            true
            (List.mem (m.Lab.Ratio.family, m.Lab.Ratio.alg) pairs))
        report.Lab.Ratio.measurements;
      Alcotest.(check int) "family counts partition the measurements"
        (List.length report.Lab.Ratio.measurements)
        (List.fold_left (fun a f -> a + f.Lab.Ratio.f_count) 0 fams);
      (* A family with only one generator family must dominate its rows:
         filter to one family and the breakdown collapses to it. *)
      (match report.Lab.Ratio.measurements with
      | m :: _ ->
          let only =
            List.filter
              (fun f -> f.Lab.Ratio.f_family = m.Lab.Ratio.family)
              fams
          in
          Alcotest.(check bool) "first family has rows" true (only <> [])
      | [] -> Alcotest.fail "no measurements");
      (* Pin the JSON vocabulary of a family row. *)
      match Lab.Ratio.report_json report with
      | Obs.Json.Obj fields -> (
          match List.assoc_opt "families" fields with
          | Some (Obs.Json.List (Obs.Json.Obj row :: _)) ->
              List.iter
                (fun k ->
                  Alcotest.(check bool) (k ^ " present in family row") true
                    (List.mem_assoc k row))
                [ "family"; "alg"; "count"; "max_ratio"; "mean_ratio";
                  "exact_opts"; "violations" ]
          | _ -> Alcotest.fail "families is not a non-empty list of objects")
      | _ -> Alcotest.fail "report JSON is not an object")

(* ---------- Combine.audit bound_kind ---------- *)

let audit_records_bound_kind () =
  let path, tasks = Helpers.tiny_instance ~max_tasks:8 17 in
  let r = Sap.Combine.solve_report path tasks in
  let lp_audit = Sap.Combine.audit path tasks r in
  Alcotest.(check bool) "default is lp" true
    (lp_audit.Sap.Combine.bound_kind = Sap.Combine.Lp_bound);
  let opt = Lab.Exact_bb.value path tasks in
  let exact_audit = Sap.Combine.audit ~exact_optimum:opt path tasks r in
  Alcotest.(check bool) "exact_optimum tags Exact_bound" true
    (exact_audit.Sap.Combine.bound_kind = Sap.Combine.Exact_bound);
  Alcotest.(check (float 1e-9)) "upper bound is the optimum" opt
    exact_audit.Sap.Combine.upper_bound;
  (* The JSON vocabulary the reports use. *)
  let has_kv json k v =
    match json with
    | Obs.Json.Obj fields -> List.assoc_opt k fields = Some (Obs.Json.String v)
    | _ -> false
  in
  Alcotest.(check bool) "json bound_kind lp" true
    (has_kv (Sap.Combine.audit_json lp_audit) "bound_kind" "lp");
  Alcotest.(check bool) "json bound_kind exact" true
    (has_kv (Sap.Combine.audit_json exact_audit) "bound_kind" "exact")

(* LP-bounded rows must stay out of the summary aggregates: a ratio
   measured against an over-estimate of OPT proves nothing, so it must
   neither feed max/mean nor rank an instance "worst". *)
let ratio_summary_excludes_lp_rows () =
  with_tmp_dir (fun dir ->
      let t = Lab.Corpus.generate ~dir ~seed:3 ~variants:1 () in
      let stress =
        {
          t with
          Lab.Corpus.entries =
            List.filter
              (fun e -> e.Lab.Corpus.family = "bb-stress")
              t.Lab.Corpus.entries;
        }
      in
      let report = Lab.Ratio.run ~max_nodes:50 stress in
      Alcotest.(check bool) "stress entries exist" true
        (stress.Lab.Corpus.entries <> []);
      (* The LP rows must still carry a (bound-relative) ratio — the
         exclusion below is the summary's doing, not a missing value. *)
      Alcotest.(check bool) "some row degraded to lp with a ratio" true
        (List.exists
           (fun (m : Lab.Ratio.measurement) ->
             m.Lab.Ratio.bound_kind = Lab.Ratio.Lp_opt
             && m.Lab.Ratio.ratio <> None)
           report.Lab.Ratio.measurements);
      (* combine gets all 40 tasks; 50 nodes cannot close that search. *)
      let combine_row =
        List.find
          (fun (s : Lab.Ratio.summary_row) -> s.Lab.Ratio.s_alg = "combine")
          report.Lab.Ratio.summaries
      in
      Alcotest.(check bool) "combine rows all lp" true
        (combine_row.Lab.Ratio.exact_opts = 0
        && combine_row.Lab.Ratio.lp_fallbacks = combine_row.Lab.Ratio.count
        && combine_row.Lab.Ratio.count > 0);
      List.iter
        (fun (s : Lab.Ratio.summary_row) ->
          if s.Lab.Ratio.exact_opts = 0 then begin
            Alcotest.(check bool)
              (s.Lab.Ratio.s_alg ^ " max/mean over exact rows only")
              true
              (s.Lab.Ratio.max_ratio = None && s.Lab.Ratio.mean_ratio = None);
            Alcotest.(check bool)
              (s.Lab.Ratio.s_alg ^ " lp row never ranks worst")
              true
              (s.Lab.Ratio.worst_file = None)
          end)
        report.Lab.Ratio.summaries)

(* ---------- mutation operators ---------- *)

let check_path_instance ~what path tasks =
  let n = List.length tasks in
  List.iteri
    (fun i (t : Task.t) ->
      if t.Task.id <> i then Alcotest.failf "%s: ids not 0..n-1" what;
      if t.Task.weight <= 0.0 then Alcotest.failf "%s: nonpositive weight" what;
      if
        t.Task.first_edge < 0
        || t.Task.last_edge >= Path.num_edges path
        || t.Task.first_edge > t.Task.last_edge
      then Alcotest.failf "%s: span out of range" what;
      if t.Task.demand < 1 || t.Task.demand > Path.bottleneck_of path t then
        Alcotest.failf "%s: demand outside [1, bottleneck]" what)
    tasks;
  Array.iter
    (fun c -> if c < 1 then Alcotest.failf "%s: nonpositive capacity" what)
    (Path.capacities path);
  ignore n

let check_ring_instance ~what (r : Ring.t) =
  let m = Ring.num_edges r in
  let best (t : Ring.task) =
    let route dir =
      List.fold_left
        (fun acc e -> min acc r.Ring.capacities.(e))
        max_int
        (Ring.edges_of_route ~m ~src:t.Ring.src ~dst:t.Ring.dst dir)
    in
    max (route Ring.Cw) (route Ring.Ccw)
  in
  Array.iteri
    (fun i (t : Ring.task) ->
      if t.Ring.id <> i then Alcotest.failf "%s: ids not 0..n-1" what;
      if t.Ring.weight <= 0.0 then Alcotest.failf "%s: nonpositive weight" what;
      if t.Ring.src = t.Ring.dst then Alcotest.failf "%s: src = dst" what;
      if t.Ring.demand < 1 || t.Ring.demand > best t then
        Alcotest.failf "%s: demand not routable either way" what)
    r.Ring.tasks;
  Array.iter
    (fun c -> if c < 1 then Alcotest.failf "%s: nonpositive capacity" what)
    r.Ring.capacities

let perturb_path_mutants_valid =
  Helpers.seed_property ~count:60 "path mutants stay well-formed" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:8 seed in
      let prng = Util.Prng.create (seed + 1) in
      List.iter
        (fun op ->
          for _ = 1 to 4 do
            match Gen.Perturb.mutate_path ~prng ~max_tasks:12 op path tasks with
            | None -> ()
            | Some (path', tasks') ->
                check_path_instance
                  ~what:(Gen.Perturb.op_name op)
                  path' tasks';
                if tasks' = [] then
                  Alcotest.failf "%s: emptied the instance"
                    (Gen.Perturb.op_name op)
          done)
        Gen.Perturb.all_ops;
      true)

let perturb_ring_mutants_valid =
  Helpers.seed_property ~count:60 "ring mutants stay well-formed" (fun seed ->
      let prng = Util.Prng.create seed in
      let r =
        Gen.Ring_gen.random ~prng
          ~edges:(4 + (seed mod 3))
          ~n:(3 + (seed mod 4))
          ~cap_lo:4 ~cap_hi:12 ~ratio_lo:0.0 ~ratio_hi:0.9
      in
      List.iter
        (fun op ->
          for _ = 1 to 4 do
            match Gen.Perturb.mutate_ring ~prng ~max_tasks:12 op r with
            | None -> ()
            | Some r' -> check_ring_instance ~what:(Gen.Perturb.op_name op) r'
          done)
        Gen.Perturb.all_ops;
      true)

(* ---------- the hunt ---------- *)

let small_hunt_config =
  {
    Lab.Hunt.default_config with
    Lab.Hunt.alg = "combine";
    seed = 11;
    generations = 4;
    population = 8;
    max_nodes = 50_000;
  }

let hunt_deterministic () =
  let r1 = Lab.Hunt.run small_hunt_config in
  let r2 = Lab.Hunt.run small_hunt_config in
  Alcotest.(check string) "identical reports"
    (Obs.Json.to_string (Lab.Hunt.report_json r1))
    (Obs.Json.to_string (Lab.Hunt.report_json r2))

let hunt_pool_matches_sequential () =
  let pool = Sap_server.Pool.create ~workers:3 () in
  Fun.protect
    ~finally:(fun () -> Sap_server.Pool.shutdown pool)
    (fun () ->
      let seq = Lab.Hunt.run small_hunt_config in
      let par = Lab.Hunt.run ~pool small_hunt_config in
      Alcotest.(check string) "pooled = sequential"
        (Obs.Json.to_string (Lab.Hunt.report_json seq))
        (Obs.Json.to_string (Lab.Hunt.report_json par)))

let hunt_hof_certified_and_monotone () =
  let report = Lab.Hunt.run { small_hunt_config with Lab.Hunt.alg = "small" } in
  Alcotest.(check int) "one log entry per generation"
    small_hunt_config.Lab.Hunt.generations
    (List.length report.Lab.Hunt.log);
  let rec check_monotone prev = function
    | [] -> ()
    | (l : Lab.Hunt.generation_log) :: rest ->
        if l.Lab.Hunt.g_best < prev -. 1e-12 then
          Alcotest.failf "best ratio regressed at generation %d"
            l.Lab.Hunt.g_index;
        check_monotone l.Lab.Hunt.g_best rest
  in
  check_monotone 0.0 report.Lab.Hunt.log;
  let rec check_sorted = function
    | (a : Lab.Hunt.scored) :: (b :: _ as rest) ->
        if a.Lab.Hunt.ratio < b.Lab.Hunt.ratio -. 1e-12 then
          Alcotest.fail "hall of fame not ratio-descending";
        check_sorted rest
    | _ -> ()
  in
  check_sorted report.Lab.Hunt.hall_of_fame;
  List.iter
    (fun (s : Lab.Hunt.scored) ->
      Alcotest.(check bool) "hof entry exact-certified" true s.Lab.Hunt.exact;
      (match s.Lab.Hunt.instance with
      | Lab.Corpus.Path_instance (p, ts) ->
          check_path_instance ~what:"hof instance" p ts
      | Lab.Corpus.Ring_instance r -> check_ring_instance ~what:"hof ring" r
      | Lab.Corpus.Round_instance _ ->
          Alcotest.fail "hunt produced a round instance");
      Alcotest.(check bool) "hof ratio is opt/alg" true
        (s.Lab.Hunt.alg_weight > 0.0
        && Float.abs
             (s.Lab.Hunt.ratio -. (s.Lab.Hunt.opt /. s.Lab.Hunt.alg_weight))
           < 1e-9))
    report.Lab.Hunt.hall_of_fame;
  match report.Lab.Hunt.hall_of_fame with
  | [] -> Alcotest.fail "empty hall of fame"
  | best :: _ ->
      Alcotest.(check (float 1e-12)) "final log entry is the hof best"
        best.Lab.Hunt.ratio
        (List.nth report.Lab.Hunt.log
           (List.length report.Lab.Hunt.log - 1))
          .Lab.Hunt.g_best

let hunt_report_schema () =
  let report = Lab.Hunt.run { small_hunt_config with Lab.Hunt.generations = 2 } in
  match Obs.Json.of_string (Obs.Json.to_string (Lab.Hunt.report_json report)) with
  | Error m -> Alcotest.failf "hunt JSON does not re-parse: %s" m
  | Ok (Obs.Json.Obj fields) ->
      Alcotest.(check bool) "schema tag" true
        (List.assoc_opt "schema" fields
        = Some (Obs.Json.String "sap-hunt v1"));
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " present") true
            (List.assoc_opt k fields <> None))
        [
          "alg"; "seed"; "bound"; "evaluated"; "best_ratio";
          "generations_log"; "operators"; "hall_of_fame";
        ]
  | Ok _ -> Alcotest.fail "hunt JSON is not an object"

let hunt_write_hof_roundtrip () =
  with_tmp_dir (fun dir ->
      let hof_dir = Filename.concat dir "hof" in
      let report = Lab.Hunt.run small_hunt_config in
      let files = Lab.Hunt.write_hof ~dir:hof_dir report in
      Alcotest.(check int) "one file per hof entry"
        (List.length report.Lab.Hunt.hall_of_fame)
        (List.length files);
      List.iter
        (fun f ->
          let text = Sap_io.Instance_io.read_file (Filename.concat hof_dir f) in
          match Sap_io.Instance_io.instance_of_string text with
          | Ok (p, ts) -> check_path_instance ~what:f p ts
          | Error _ -> (
              match Sap_io.Instance_io.ring_of_string text with
              | Ok r -> check_ring_instance ~what:f r
              | Error m -> Alcotest.failf "%s: %s" f m))
        files)

let hunt_rejects_unknown_alg () =
  Alcotest.check_raises "unknown alg"
    (Invalid_argument
       "Lab.Hunt: unknown algorithm \"grande\" (have: small, medium, large, \
        combine, ring)")
    (fun () ->
      ignore (Lab.Hunt.run { small_hunt_config with Lab.Hunt.alg = "grande" }))

(* ---------- loadgen ---------- *)

module Loadgen = Lab.Loadgen
module Server = Sap_server.Server
module Transport = Sap_server.Transport

let lg_config =
  {
    Loadgen.default_config with
    Loadgen.rps = 40.0;
    duration = 1.0;
    distinct = 8;
    seed = 11;
    scrape_stats = false;
  }

let with_server f =
  let srv =
    Server.create
      ~config:{ Server.default_config with Server.workers = Some 2 } ()
  in
  Fun.protect ~finally:(fun () -> Server.drain srv) (fun () -> f srv)

let loadgen_closed_deterministic () =
  let run () =
    with_server @@ fun srv ->
    match Loadgen.run_closed ~handle:(Server.handle srv) lg_config with
    | Error m -> Alcotest.failf "run_closed: %s" m
    | Ok r -> r
  in
  let a = run () in
  let b = run () in
  Alcotest.(check int) "sent = round(rps*duration)" 40 a.Loadgen.sent;
  Alcotest.(check int) "all completed" 40 a.Loadgen.completed;
  Alcotest.(check int) "one fresh solve per distinct instance" 8
    a.Loadgen.solved;
  Alcotest.(check int) "revisits cached" 32 a.Loadgen.cached;
  Alcotest.(check int) "no failures" 0
    (a.Loadgen.timeouts + a.Loadgen.errors + a.Loadgen.lost);
  Alcotest.(check (list string)) "no protocol errors" []
    a.Loadgen.protocol_errors;
  (* The counter shape is a function of the seed alone. *)
  Alcotest.(check int) "solved reproducible" a.Loadgen.solved b.Loadgen.solved;
  Alcotest.(check int) "cached reproducible" a.Loadgen.cached b.Loadgen.cached;
  (match Loadgen.cache_hit_rate a with
  | Some rate -> Alcotest.(check (float 1e-9)) "hit rate" 0.8 rate
  | None -> Alcotest.fail "hit rate missing");
  Alcotest.(check int) "latency samples" 40 a.Loadgen.latency.Obs.Metrics.count;
  Alcotest.(check bool) "latencies nonnegative" true
    (a.Loadgen.latency.Obs.Metrics.min >= 0.0);
  (* The sap-loadgen v1 report parses with our own parser. *)
  let j = Loadgen.report_json a in
  (match j with
  | Obs.Json.Obj fields ->
      Alcotest.(check bool) "schema" true
        (List.assoc_opt "schema" fields
        = Some (Obs.Json.String "sap-loadgen v1"));
      Alcotest.(check bool) "server_stats null without scrape" true
        (List.assoc_opt "server_stats" fields = Some Obs.Json.Null)
  | _ -> Alcotest.fail "report is not an object");
  Alcotest.(check bool) "report round-trips" true
    (match Obs.Json.of_string (Obs.Json.to_string j) with
    | Ok _ -> true
    | Error _ -> false)

let loadgen_validates_config () =
  let bad what cfg =
    match Loadgen.run_closed ~handle:(fun _ -> assert false) cfg with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: expected a config error" what
  in
  bad "unknown profile" { lg_config with Loadgen.profile = "nope" };
  bad "zero rps" { lg_config with Loadgen.rps = 0.0 };
  bad "negative duration" { lg_config with Loadgen.duration = -1.0 };
  bad "zero connections" { lg_config with Loadgen.connections = 0 }

let loadgen_open_loop_over_socketpairs () =
  (* The full open-loop pipeline — pacer, pipelined connections, reader
     domains, mid-run stats scrape — against an in-process server: every
     [connect] hands back one end of a socketpair served by its own
     domain. *)
  let srv =
    Server.create
      ~config:{ Server.default_config with Server.workers = Some 2 } ()
  in
  let doms = ref [] in
  let lock = Mutex.create () in
  let connect () =
    let client_fd, server_fd =
      Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
    in
    let d =
      Domain.spawn (fun () ->
          let ic = Unix.in_channel_of_descr server_fd in
          let oc = Unix.out_channel_of_descr server_fd in
          Transport.serve_channels srv ic oc;
          (try flush oc with Sys_error _ -> ());
          try Unix.close server_fd with Unix.Unix_error _ -> ())
    in
    Mutex.lock lock;
    doms := d :: !doms;
    Mutex.unlock lock;
    Ok client_fd
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter Domain.join !doms;
      Server.drain srv)
  @@ fun () ->
  let cfg =
    {
      lg_config with
      Loadgen.rps = 120.0;
      duration = 0.5;
      connections = 2;
      scrape_stats = true;
    }
  in
  match Loadgen.run ~connect cfg with
  | Error m -> Alcotest.failf "loadgen run: %s" m
  | Ok r ->
      Alcotest.(check int) "sent" 60 r.Loadgen.sent;
      Alcotest.(check int) "all completed" 60 r.Loadgen.completed;
      Alcotest.(check int) "no failures" 0
        (r.Loadgen.timeouts + r.Loadgen.errors + r.Loadgen.lost);
      Alcotest.(check (list string)) "no protocol errors" []
        r.Loadgen.protocol_errors;
      (* Concurrent connections may race the first visit to an instance,
         so fresh solves can exceed [distinct] — but never undershoot. *)
      Alcotest.(check bool) "every distinct instance solved" true
        (r.Loadgen.solved >= 8);
      Alcotest.(check int) "solved + cached = completed" 60
        (r.Loadgen.solved + r.Loadgen.cached);
      Alcotest.(check int) "latency samples" 60
        r.Loadgen.latency.Obs.Metrics.count;
      Alcotest.(check bool) "p50 positive" true
        (Obs.Metrics.quantile r.Loadgen.latency 0.5 > 0.0);
      Alcotest.(check bool) "achieved rps positive" true
        (r.Loadgen.achieved_rps > 0.0);
      (match r.Loadgen.server_stats with
      | Some (Obs.Json.Obj fields) ->
          Alcotest.(check bool) "scraped stats schema" true
            (List.assoc_opt "schema" fields
            = Some (Obs.Json.String "sap-server-stats v2"))
      | _ -> Alcotest.fail "mid-run stats scrape missing")

let run () =
  Alcotest.run "lab"
    [
      ( "exact_bb",
        [
          bb_matches_brute;
          bb_matches_brute_pooled;
          bb_ring_matches_brute;
          case "budget reports nonoptimal" bb_budget_reports_nonoptimal;
          case "palette sweep vs brute (2k seeds)" bb_brute_palette_sweep;
        ] );
      ( "oracle guards",
        [
          case "sap_brute guard" brute_guard_trips;
          case "ring_brute guard" ring_guard_trips;
          case "symmetry cut optimal" brute_symmetry_still_optimal;
          case "40 tasks beyond the guard" bb_solves_beyond_brute;
        ] );
      ( "corpus",
        [
          case "round trip" corpus_roundtrip;
          case "deterministic" corpus_deterministic;
        ] );
      ( "ratio",
        [
          case "bounds hold on seeded corpus" ratio_run_respects_bounds;
          case "budget degrades to lp" ratio_budget_degrades_to_lp;
          case "sap-ratio v1 schema" ratio_json_schema;
          case "per-family breakdown" ratio_family_breakdown;
          case "summary excludes lp rows" ratio_summary_excludes_lp_rows;
        ] );
      ( "audit",
        [ case "bound_kind recorded" audit_records_bound_kind ] );
      ( "perturb",
        [ perturb_path_mutants_valid; perturb_ring_mutants_valid ] );
      ( "hunt",
        [
          case "deterministic" hunt_deterministic;
          case "pooled = sequential" hunt_pool_matches_sequential;
          case "hof certified + monotone" hunt_hof_certified_and_monotone;
          case "sap-hunt v1 schema" hunt_report_schema;
          case "write_hof round trip" hunt_write_hof_roundtrip;
          case "unknown alg rejected" hunt_rejects_unknown_alg;
        ] );
      ( "loadgen",
        [
          case "closed loop deterministic" loadgen_closed_deterministic;
          case "config validation" loadgen_validates_config;
          case "open loop over socketpairs" loadgen_open_loop_over_socketpairs;
        ] );
    ]

let () = run ()
