(* Algebraic properties of the core data structures: the small laws that
   the algorithm code silently relies on. *)

module Task = Core.Task
module Path = Core.Path

(* ---------- Path ---------- *)

let clip_idempotent =
  Helpers.seed_property "clip is idempotent" (fun seed ->
      let g = Util.Prng.create seed in
      let path = Helpers.random_path g in
      let c = 1 + Util.Prng.int g 30 in
      Path.capacities (Path.clip (Path.clip path c) c)
      = Path.capacities (Path.clip path c))

let clip_monotone =
  Helpers.seed_property "clip at larger cap dominates" (fun seed ->
      let g = Util.Prng.create seed in
      let path = Helpers.random_path g in
      let c = 2 + Util.Prng.int g 20 in
      let small = Path.capacities (Path.clip path (c / 2)) in
      let big = Path.capacities (Path.clip path c) in
      Array.for_all2 ( >= ) big small)

let bottleneck_monotone_in_span =
  Helpers.seed_property "wider span, smaller-or-equal bottleneck" (fun seed ->
      let g = Util.Prng.create seed in
      let path = Helpers.random_path g in
      let m = Path.num_edges path in
      let first = Util.Prng.int g m in
      let last = first + Util.Prng.int g (m - first) in
      let inner_first = first + Util.Prng.int g (last - first + 1) in
      let inner_last = inner_first + Util.Prng.int g (last - inner_first + 1) in
      Path.bottleneck path ~first ~last
      <= Path.bottleneck path ~first:inner_first ~last:inner_last)

(* ---------- Solution algebra ---------- *)

let lift_composes =
  Helpers.seed_property "lift a (lift b s) = lift (a+b) s" (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      let sol = Exact.Sap_brute.solve path tasks in
      let a = seed mod 5 and b = seed mod 7 in
      Core.Solution.lift (Core.Solution.lift sol a) b
      = Core.Solution.lift sol (a + b))

let lift_preserves_weight =
  Helpers.seed_property "lift preserves weight and tasks" (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      let sol = Exact.Sap_brute.solve path tasks in
      let lifted = Core.Solution.lift sol 3 in
      Helpers.close_enough (Core.Solution.sap_weight lifted) (Core.Solution.sap_weight sol)
      && Core.Solution.sap_tasks lifted = Core.Solution.sap_tasks sol)

let union_weight_additive =
  Helpers.seed_property "union weight is additive" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:8 seed in
      let sol = Exact.Sap_brute.solve path tasks in
      let left, right = List.partition (fun ((j : Task.t), _) -> j.Task.id mod 2 = 0) sol in
      let u = Core.Solution.union left right in
      Helpers.close_enough (Core.Solution.sap_weight u)
        (Core.Solution.sap_weight left +. Core.Solution.sap_weight right))

let makespan_dominates_load =
  Helpers.seed_property "makespan >= load on every edge" (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      let sol = Exact.Sap_brute.solve path tasks in
      let ms = Core.Solution.makespan path sol in
      let load = Core.Instance.load_profile path (Core.Solution.sap_tasks sol) in
      Array.for_all2 ( <= ) load ms)

(* ---------- Classification laws ---------- *)

let split3_is_partition =
  Helpers.seed_property "split3 partitions the task set" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:15 seed in
      let s = Core.Classify.split3 path ~delta:0.25 ~large_frac:0.5 tasks in
      let all =
        s.Core.Classify.small @ s.Core.Classify.medium @ s.Core.Classify.large
      in
      List.length all = List.length tasks
      && List.for_all (fun j -> List.memq j all) tasks)

let strip_bands_partition =
  Helpers.seed_property "strip bands partition the task set" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:15 seed in
      let bands = Core.Classify.strip_bands path tasks in
      let all = List.concat_map snd bands in
      List.length all = List.length tasks)

let small_instances_obey_observation2 =
  (* Observation 2: any feasible SAP solution's makespan on an edge is at
     most the max bottleneck among scheduled tasks. *)
  Helpers.seed_property ~count:40 "Observation 2 holds for exact optima"
    (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      let sol = Exact.Sap_brute.solve path tasks in
      match Core.Solution.sap_tasks sol with
      | [] -> true
      | chosen ->
          let max_b =
            List.fold_left
              (fun acc j -> max acc (Path.bottleneck_of path j))
              0 chosen
          in
          Core.Solution.max_makespan path sol <= max_b)

let observation1_load_bound =
  (* Observation 1: a feasible UFPP solution's load is at most twice the
     max bottleneck among its tasks. *)
  Helpers.seed_property ~count:40 "Observation 1 holds for exact UFPP optima"
    (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      let sol = Ufpp.Exact_bb.solve path tasks in
      match sol with
      | [] -> true
      | _ ->
          let max_b =
            List.fold_left (fun acc j -> max acc (Path.bottleneck_of path j)) 0 sol
          in
          Core.Instance.max_load path sol <= 2 * max_b)

let lemma16_corollary =
  (* Corollary of Lemma 16: in any feasible SAP solution of 1/k-large tasks
     sharing a common bottleneck value b, at most k tasks can use one edge
     (their demands each exceed b/k while the makespan is at most b). *)
  Helpers.seed_property ~count:30 "at most k equal-bottleneck 1/k-large tasks per edge"
    (fun seed ->
      let k = 2 + (seed mod 2) in
      let path, tasks =
        Helpers.tiny_ratio_instance ~max_tasks:9 ~lo:(1.0 /. float_of_int k) ~hi:1.0 seed
      in
      let sol = Exact.Sap_brute.solve path tasks in
      let chosen = Core.Solution.sap_tasks sol in
      let m = Path.num_edges path in
      let ok = ref true in
      for e = 0 to m - 1 do
        let here = List.filter (fun j -> Task.uses j e) chosen in
        (* Group by bottleneck value; each group is bounded by k. *)
        let by_b = Hashtbl.create 8 in
        List.iter
          (fun j ->
            let b = Path.bottleneck_of path j in
            Hashtbl.replace by_b b (1 + Option.value ~default:0 (Hashtbl.find_opt by_b b)))
          here;
        Hashtbl.iter (fun _ count -> if count > k then ok := false) by_b
      done;
      !ok)

let lemma12_heights_are_demand_sums =
  (* Lemma 12(ii) / Observation 11: after gravity, every height is a sum of
     demands of other scheduled tasks. *)
  Helpers.seed_property ~count:30 "settled heights are subset sums of demands"
    (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      let sol = Core.Gravity.settle path (Exact.Sap_brute.solve path tasks) in
      let demands =
        List.map (fun ((j : Task.t), _) -> j.Task.demand) sol
      in
      let sums =
        Util.Subset_sum.distinct_sums ~bound:(Path.max_capacity path + 1) demands
      in
      List.for_all (fun (_, h) -> List.mem h sums) sol)

(* ---------- Gravity + rectangles interplay ---------- *)

let top_drawn_heights_feasible =
  (* Drawing any single task at height l(j) is always feasible. *)
  Helpers.seed_property "top-drawn singleton placements feasible" (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      List.for_all
        (fun (j : Task.t) ->
          j.Task.demand > Path.bottleneck_of path j
          || Result.is_ok
               (Core.Checker.sap_feasible path
                  [ (j, Path.bottleneck_of path j - j.Task.demand) ]))
        tasks)

let () =
  Alcotest.run "algebra"
    [
      ("path", [ clip_idempotent; clip_monotone; bottleneck_monotone_in_span ]);
      ( "solution",
        [
          lift_composes;
          lift_preserves_weight;
          union_weight_additive;
          makespan_dominates_load;
        ] );
      ( "classification",
        [ split3_is_partition; strip_bands_partition ] );
      ( "paper_observations",
        [
          small_instances_obey_observation2;
          observation1_load_bound;
          lemma16_corollary;
          lemma12_heights_are_demand_sums;
          top_drawn_heights_feasible;
        ] );
    ]
