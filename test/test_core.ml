module Task = Core.Task
module Path = Core.Path

let case = Helpers.case

let mk ?(w = 1.0) id first last d =
  Task.make ~id ~first_edge:first ~last_edge:last ~demand:d ~weight:w

(* ---------- Task ---------- *)

let task_validation () =
  Alcotest.check_raises "reversed range" (Invalid_argument "Task.make: bad edge range")
    (fun () -> ignore (mk 0 3 1 1));
  Alcotest.check_raises "zero demand"
    (Invalid_argument "Task.make: demand must be positive") (fun () ->
      ignore (mk 0 0 1 0));
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Task.make: weight must be non-negative") (fun () ->
      ignore (Task.make ~id:0 ~first_edge:0 ~last_edge:1 ~demand:1 ~weight:(-1.0)))

let task_overlaps () =
  let a = mk 0 0 2 1 and b = mk 1 2 4 1 and c = mk 2 3 5 1 in
  Alcotest.(check bool) "share edge 2" true (Task.overlaps a b);
  Alcotest.(check bool) "disjoint" false (Task.overlaps a c);
  Alcotest.(check bool) "symmetric" true (Task.overlaps b a);
  Alcotest.(check bool) "self" true (Task.overlaps a a)

let task_uses_span () =
  let t = mk 0 2 5 3 in
  Alcotest.(check bool) "uses 2" true (Task.uses t 2);
  Alcotest.(check bool) "uses 5" true (Task.uses t 5);
  Alcotest.(check bool) "not 1" false (Task.uses t 1);
  Alcotest.(check int) "span" 4 (Task.span t)

let task_aggregates () =
  let ts = [ mk ~w:1.5 0 0 1 2; mk ~w:2.5 1 0 1 3 ] in
  Alcotest.(check bool) "weight" true (Helpers.close_enough (Task.weight_of ts) 4.0);
  Alcotest.(check int) "demand" 5 (Task.demand_of ts)

(* ---------- Path ---------- *)

let path_bottleneck () =
  let p = Path.create [| 5; 2; 7; 3 |] in
  Alcotest.(check int) "whole" 2 (Path.bottleneck p ~first:0 ~last:3);
  Alcotest.(check int) "suffix" 3 (Path.bottleneck p ~first:2 ~last:3);
  Alcotest.(check int) "single" 7 (Path.bottleneck p ~first:2 ~last:2);
  Alcotest.(check int) "task" 2 (Path.bottleneck_of p (mk 0 0 2 1));
  Alcotest.(check int) "min" 2 (Path.min_capacity p);
  Alcotest.(check int) "max" 7 (Path.max_capacity p)

let path_clip () =
  let p = Path.clip (Path.create [| 5; 2; 7 |]) 4 in
  Alcotest.(check int) "clipped" 4 (Path.capacity p 0);
  Alcotest.(check int) "kept" 2 (Path.capacity p 1);
  Alcotest.(check int) "clipped high" 4 (Path.capacity p 2)

let path_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Path.create: no edges") (fun () ->
      ignore (Path.create [||]));
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Path.create: non-positive capacity") (fun () ->
      ignore (Path.create [| 3; 0 |]))

let path_capacities_copy () =
  let src = [| 4; 5 |] in
  let p = Path.create src in
  src.(0) <- 99;
  Alcotest.(check int) "input copied" 4 (Path.capacity p 0);
  let out = Path.capacities p in
  out.(0) <- 77;
  Alcotest.(check int) "output copied" 4 (Path.capacity p 0)

(* ---------- Instance ---------- *)

let instance_reassigns_ids () =
  let p = Path.uniform ~edges:3 ~capacity:5 in
  let inst = Core.Instance.create p [ mk 42 0 1 1; mk 42 1 2 1 ] in
  Alcotest.(check int) "first id" 0 (Core.Instance.task inst 0).Task.id;
  Alcotest.(check int) "second id" 1 (Core.Instance.task inst 1).Task.id

let instance_rejects_out_of_path () =
  let p = Path.uniform ~edges:2 ~capacity:5 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Core.Instance.create p [ mk 0 0 5 1 ]);
       false
     with Invalid_argument _ -> true)

let instance_queries () =
  let p = Path.uniform ~edges:4 ~capacity:10 in
  let inst = Core.Instance.create p [ mk ~w:2.0 0 0 1 3; mk ~w:3.0 0 2 3 4 ] in
  Alcotest.(check int) "tasks on edge 0" 1
    (List.length (Core.Instance.tasks_using_edge inst 0));
  Alcotest.(check int) "tasks on edge 2" 1
    (List.length (Core.Instance.tasks_using_edge inst 2));
  Alcotest.(check bool) "total weight" true
    (Helpers.close_enough (Core.Instance.total_weight inst) 5.0);
  Alcotest.(check bool) "feasible task" true
    (Core.Instance.is_feasible_task inst (Core.Instance.task inst 0))

let path_bottleneck_edge () =
  let p = Path.create [| 5; 2; 7 |] in
  Alcotest.(check int) "argmin edge" 1 (Path.bottleneck_edge p ~first:0 ~last:2);
  Alcotest.(check int) "single" 2 (Path.bottleneck_edge p ~first:2 ~last:2)

let classify_residual () =
  let p = Path.create [| 8; 5 |] in
  Alcotest.(check int) "residual" 2 (Core.Classify.residual p (mk 0 0 1 3))

let ring_task_validation () =
  Alcotest.(check bool) "src = dst rejected" true
    (try
       ignore (Core.Ring.make_task ~id:0 ~src:1 ~dst:1 ~demand:1 ~weight:1.0 ~t_edges:4);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "tiny ring rejected" true
    (try
       ignore (Core.Ring.create [| 1; 1 |] []);
       false
     with Invalid_argument _ -> true)

let load_profile_matches_naive =
  Helpers.seed_property "load_profile = naive" (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      let load = Core.Instance.load_profile path tasks in
      let m = Path.num_edges path in
      let ok = ref true in
      for e = 0 to m - 1 do
        let naive =
          List.fold_left
            (fun acc (j : Task.t) -> if Task.uses j e then acc + j.Task.demand else acc)
            0 tasks
        in
        if load.(e) <> naive then ok := false
      done;
      !ok)

(* ---------- Checker: acceptance and failure injection ---------- *)

let checker_accepts_valid () =
  let p = Path.create [| 4; 4; 4 |] in
  let sol = [ (mk 0 0 1 2, 0); (mk 1 1 2 2, 2); (mk 2 2 2 2, 0) ] in
  Helpers.assert_feasible_sap p sol

let checker_rejects_vertical_overlap () =
  let p = Path.create [| 4; 4 |] in
  let sol = [ (mk 0 0 1 2, 0); (mk 1 1 1 2, 1) ] in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Core.Checker.sap_feasible p sol))

let checker_rejects_capacity () =
  let p = Path.create [| 4; 2 |] in
  let sol = [ (mk 0 0 1 2, 1) ] in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Core.Checker.sap_feasible p sol))

let checker_rejects_duplicate () =
  let p = Path.create [| 4 |] in
  let t = mk 0 0 0 1 in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Core.Checker.sap_feasible p [ (t, 0); (t, 2) ]))

let checker_rejects_negative_height () =
  let p = Path.create [| 4 |] in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Core.Checker.sap_feasible p [ (mk 0 0 0 1, -1) ]))

let checker_rejects_off_path () =
  let p = Path.create [| 4 |] in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Core.Checker.sap_feasible p [ (mk 0 0 3 1, 0) ]))

(* [Task.make] refuses to build tasks with a negative or inverted edge
   range, so forge records with the same memory layout to prove the
   checker validates ranges itself instead of trusting the type.  The
   tuple below matches the field order of [Core.Task.t]. *)
let forge_task ~id ~first_edge ~last_edge ~demand ~weight : Task.t =
  Obj.magic (id, first_edge, last_edge, demand, weight)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let checker_rejects_negative_first_edge () =
  let p = Path.create [| 4; 4 |] in
  let t = forge_task ~id:3 ~first_edge:(-1) ~last_edge:1 ~demand:1 ~weight:1.0 in
  (match Core.Checker.sap_feasible p [ (t, 0) ] with
  | Ok () -> Alcotest.fail "negative first_edge accepted"
  | Error msg ->
      Alcotest.(check bool) "names the failure" true
        (contains_sub msg "starts before"));
  Alcotest.(check bool) "ufpp rejects too" true
    (Result.is_error (Core.Checker.ufpp_feasible p [ t ]))

let checker_rejects_inverted_range () =
  let p = Path.create [| 4; 4; 4 |] in
  let t = forge_task ~id:3 ~first_edge:2 ~last_edge:0 ~demand:1 ~weight:1.0 in
  (match Core.Checker.sap_feasible p [ (t, 0) ] with
  | Ok () -> Alcotest.fail "inverted range accepted"
  | Error msg ->
      Alcotest.(check bool) "names the failure" true
        (contains_sub msg "inverted"));
  Alcotest.(check bool) "ufpp rejects too" true
    (Result.is_error (Core.Checker.ufpp_feasible p [ t ]))

let checker_within_bound () =
  let p = Path.create [| 8; 8 |] in
  let sol = [ (mk 0 0 1 3, 2) ] in
  Helpers.check_ok "within 8" (Core.Checker.sap_feasible_within p ~bound:8 sol);
  Alcotest.(check bool) "violates 4" true
    (Result.is_error (Core.Checker.sap_feasible_within p ~bound:4 sol))

let checker_ufpp () =
  let p = Path.create [| 3; 3 |] in
  Helpers.assert_feasible_ufpp p [ mk 0 0 1 2; mk 1 1 1 1 ];
  Alcotest.(check bool) "overload rejected" true
    (Result.is_error (Core.Checker.ufpp_feasible p [ mk 0 0 1 2; mk 1 0 1 2 ]))

let checker_subset_of () =
  let a = mk 0 0 1 1 and b = mk 1 0 1 2 in
  Alcotest.(check bool) "subset" true (Core.Checker.subset_of [ a ] [ a; b ]);
  Alcotest.(check bool) "foreign task" false (Core.Checker.subset_of [ mk 7 0 0 1 ] [ a; b ]);
  Alcotest.(check bool) "mutated task" false
    (Core.Checker.subset_of [ Task.with_weight a 9.0 ] [ a; b ])

(* ---------- Solution ---------- *)

let solution_lift_union () =
  let p = Path.create [| 8; 8 |] in
  let s1 = [ (mk 0 0 1 2, 0) ] and s2 = [ (mk 1 0 1 2, 4) ] in
  let u = Core.Solution.union s1 (Core.Solution.lift s2 2) in
  Helpers.assert_feasible_sap p u;
  Alcotest.(check int) "lifted height" 6 (Core.Solution.sap_height u (mk 1 0 1 2))

let solution_union_rejects_dup () =
  let t = mk 0 0 1 2 in
  Alcotest.check_raises "duplicate union"
    (Invalid_argument "Solution.union: task sets not disjoint") (fun () ->
      ignore (Core.Solution.union [ (t, 0) ] [ (t, 4) ]))

let solution_makespan () =
  let p = Path.create [| 8; 8; 8 |] in
  let sol = [ (mk 0 0 1 2, 1); (mk 1 1 2 3, 4) ] in
  let ms = Core.Solution.makespan p sol in
  Alcotest.(check int) "edge0" 3 ms.(0);
  Alcotest.(check int) "edge1" 7 ms.(1);
  Alcotest.(check int) "edge2" 7 ms.(2);
  Alcotest.(check int) "max" 7 (Core.Solution.max_makespan p sol);
  Alcotest.(check bool) "7-packable" true (Core.Solution.is_packable p ~bound:7 sol);
  Alcotest.(check bool) "not 6-packable" false (Core.Solution.is_packable p ~bound:6 sol)

(* ---------- Classify ---------- *)

let classify_split3 () =
  let p = Path.create [| 8; 8 |] in
  let small = mk 0 0 1 2 (* 2 <= 0.25*8 *)
  and medium = mk 1 0 1 3 (* 0.25*8 < 3 <= 0.5*8 *)
  and large = mk 2 0 1 5 in
  let s = Core.Classify.split3 p ~delta:0.25 ~large_frac:0.5 [ small; medium; large ] in
  Alcotest.(check int) "small" 1 (List.length s.Core.Classify.small);
  Alcotest.(check int) "medium" 1 (List.length s.Core.Classify.medium);
  Alcotest.(check int) "large" 1 (List.length s.Core.Classify.large)

let classify_strip_bands () =
  let p = Path.create [| 4; 9; 17 |] in
  let bands =
    Core.Classify.strip_bands p [ mk 0 0 0 1 (* b=4,t=2 *); mk 1 1 1 1 (* b=9,t=3 *); mk 2 2 2 1 (* b=17,t=4 *); mk 3 0 2 1 (* b=4,t=2 *) ]
  in
  Alcotest.(check (list int)) "band indices" [ 2; 3; 4 ] (List.map fst bands);
  Alcotest.(check int) "band 2 size" 2 (List.length (List.assoc 2 bands))

let classify_power_bands_multiplicity =
  Helpers.seed_property "each task in exactly ell bands" (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      let ell = 1 + (seed mod 3) in
      let bands = Core.Classify.power_bands path ~ell tasks in
      let count t =
        List.fold_left
          (fun acc (_, js) ->
            acc + List.length (List.filter (fun (j : Task.t) -> j.Task.id = t) js))
          0 bands
      in
      List.for_all (fun (j : Task.t) -> count j.Task.id = ell) tasks)

let classify_power_band_ranges =
  Helpers.seed_property "band k holds 2^k <= b < 2^(k+ell)" (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      let ell = 1 + (seed mod 3) in
      let bands = Core.Classify.power_bands path ~ell tasks in
      List.for_all
        (fun (k, js) ->
          List.for_all
            (fun j ->
              let b = Path.bottleneck_of path j in
              (k >= 0 || b < 1 lsl (k + ell))
              && (k < 0 || (b >= 1 lsl k && b < 1 lsl (k + ell))))
            js)
        bands)

(* ---------- Instance_stats ---------- *)

let stats_fractions_sum =
  Helpers.seed_property "stats class fractions sum to fit tasks" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:15 seed in
      let s = Core.Instance_stats.compute path tasks in
      let n = float_of_int s.Core.Instance_stats.num_tasks in
      let fit = n -. float_of_int s.Core.Instance_stats.unfit_tasks in
      Helpers.close_enough ~tol:1e-6
        ((s.Core.Instance_stats.small_fraction
         +. s.Core.Instance_stats.medium_fraction
         +. s.Core.Instance_stats.large_fraction)
        *. Float.max 1.0 n)
        fit)

let stats_band_counts =
  Helpers.seed_property "stats band counts total the fit tasks" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:15 seed in
      let s = Core.Instance_stats.compute path tasks in
      List.fold_left (fun acc (_, c) -> acc + c) 0 s.Core.Instance_stats.bottleneck_bands
      = s.Core.Instance_stats.num_tasks - s.Core.Instance_stats.unfit_tasks)

let stats_known_instance () =
  let path = Path.create [| 8; 4 |] in
  let tasks = [ mk 0 0 1 1 (* small: 1 <= 4/4 *); mk 1 0 1 3 (* large: 3 > 2 *); mk 2 1 1 9 (* unfit *) ] in
  let s = Core.Instance_stats.compute path tasks in
  Alcotest.(check int) "unfit" 1 s.Core.Instance_stats.unfit_tasks;
  Alcotest.(check int) "load" 13 s.Core.Instance_stats.max_load;
  Alcotest.(check bool) "small third" true
    (Helpers.close_enough s.Core.Instance_stats.small_fraction (1.0 /. 3.0));
  Alcotest.(check bool) "large third" true
    (Helpers.close_enough s.Core.Instance_stats.large_fraction (1.0 /. 3.0))

(* ---------- Gravity ---------- *)

let gravity_drops () =
  let p = Path.create [| 10; 10 |] in
  let sol = [ (mk 0 0 1 2, 5); (mk 1 0 0 3, 1) ] in
  let settled = Core.Gravity.settle p sol in
  Helpers.assert_feasible_sap p settled;
  Alcotest.(check bool) "is settled" true (Core.Gravity.is_settled p settled);
  Alcotest.(check int) "lower task at 0" 0 (Core.Solution.sap_height settled (mk 1 0 0 3));
  Alcotest.(check int) "upper rests on lower" 3 (Core.Solution.sap_height settled (mk 0 0 1 2))

let gravity_preserves =
  Helpers.seed_property ~count:40 "gravity preserves feasibility/weight, never lifts"
    (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      match Exact.Sap_brute.realizable path tasks with
      | None -> true (* nothing to settle *)
      | Some sol ->
          let settled = Core.Gravity.settle path sol in
          Result.is_ok (Core.Checker.sap_feasible path settled)
          && Core.Gravity.is_settled path settled
          && Helpers.close_enough
               (Core.Solution.sap_weight settled)
               (Core.Solution.sap_weight sol)
          && List.for_all
               (fun (j, h) -> h <= Core.Solution.sap_height sol j)
               settled)

let gravity_idempotent =
  Helpers.seed_property ~count:30 "settle is idempotent" (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      match Exact.Sap_brute.realizable path tasks with
      | None -> true
      | Some sol ->
          let s1 = Core.Gravity.settle path sol in
          let s2 = Core.Gravity.settle path s1 in
          Core.Solution.sort_by_id s1 = Core.Solution.sort_by_id s2)

(* ---------- Ring ---------- *)

let ring_route_complement () =
  let m = 6 in
  for src = 0 to m - 1 do
    for dst = 0 to m - 1 do
      if src <> dst then begin
        let cw = Core.Ring.edges_of_route ~m ~src ~dst Core.Ring.Cw in
        let ccw = Core.Ring.edges_of_route ~m ~src ~dst Core.Ring.Ccw in
        Alcotest.(check int)
          (Printf.sprintf "%d->%d partition" src dst)
          m
          (List.length cw + List.length ccw);
        List.iter
          (fun e ->
            Alcotest.(check bool) "disjoint" false (List.mem e ccw))
          cw
      end
    done
  done

let ring_cut_roundtrip () =
  let caps = [| 5; 3; 7; 4; 6 |] in
  let tk src dst = Core.Ring.make_task ~id:0 ~src ~dst ~demand:2 ~weight:1.0 ~t_edges:5 in
  let r = Core.Ring.create caps [ tk 0 2; tk 3 1; tk 4 2 ] in
  let cut_edge = 1 in
  let path, path_tasks, _back = Core.Ring.cut r ~cut_edge in
  Alcotest.(check int) "edges" 4 (Path.num_edges path);
  (* No path task may use an edge mapping back to the cut edge; capacities
     must match the rotation. *)
  Alcotest.(check int) "rotated cap 0" caps.(2) (Path.capacity path 0);
  Alcotest.(check int) "rotated cap 3" caps.((cut_edge + 1 + 3) mod 5) (Path.capacity path 3);
  List.iter
    (fun (j : Task.t) ->
      Alcotest.(check bool) "fits path" true (j.Task.last_edge < 4))
    path_tasks

let ring_to_ring_solution () =
  (* Solving on the cut path and mapping back yields a feasible ring
     solution whose routes avoid the cut edge. *)
  let caps = [| 6; 2; 6; 6 |] in
  let tk id src dst = Core.Ring.make_task ~id ~src ~dst ~demand:2 ~weight:1.0 ~t_edges:4 in
  let r = Core.Ring.create caps [ tk 0 0 2; tk 1 3 1 ] in
  let cut_edge = 1 in
  let path, path_tasks, back = Core.Ring.cut r ~cut_edge in
  let sol = Exact.Sap_brute.solve path path_tasks in
  let ring_sol = Core.Ring.to_ring_solution r ~cut_edge sol back in
  Helpers.check_ok "mapped back feasible" (Core.Ring.feasible r ring_sol);
  List.iter
    (fun ((tk : Core.Ring.task), _, dir) ->
      let edges =
        Core.Ring.edges_of_route ~m:4 ~src:tk.Core.Ring.src ~dst:tk.Core.Ring.dst dir
      in
      Alcotest.(check bool) "avoids cut edge" false (List.mem cut_edge edges))
    ring_sol

let ring_feasible_checker () =
  let caps = [| 4; 4; 4 |] in
  let tk id src dst d = Core.Ring.make_task ~id ~src ~dst ~demand:d ~weight:1.0 ~t_edges:3 in
  let r = Core.Ring.create caps [ tk 0 0 1 2; tk 1 1 2 2 ] in
  let t0 = r.Core.Ring.tasks.(0) and t1 = r.Core.Ring.tasks.(1) in
  Helpers.check_ok "disjoint heights ok"
    (Core.Ring.feasible r [ (t0, 0, Core.Ring.Cw); (t1, 2, Core.Ring.Cw) ]);
  (* Cw routes don't even share an edge, so equal heights are fine too. *)
  Helpers.check_ok "cw routes disjoint"
    (Core.Ring.feasible r [ (t0, 0, Core.Ring.Cw); (t1, 0, Core.Ring.Cw) ]);
  (* Ccw route of t1 covers edges 2,0 — shares edge 0 with t0's Cw route. *)
  Alcotest.(check bool) "overlap rejected" true
    (Result.is_error
       (Core.Ring.feasible r [ (t0, 0, Core.Ring.Cw); (t1, 1, Core.Ring.Ccw) ]))

let () =
  Alcotest.run "core"
    [
      ( "task",
        [
          case "validation" task_validation;
          case "overlaps" task_overlaps;
          case "uses/span" task_uses_span;
          case "aggregates" task_aggregates;
        ] );
      ( "path",
        [
          case "bottleneck" path_bottleneck;
          case "clip" path_clip;
          case "validation" path_validation;
          case "copies" path_capacities_copy;
        ] );
      ( "instance",
        [
          case "ids" instance_reassigns_ids;
          case "out of path" instance_rejects_out_of_path;
          case "queries" instance_queries;
          case "bottleneck edge" path_bottleneck_edge;
          case "residual" classify_residual;
          case "ring validation" ring_task_validation;
          load_profile_matches_naive;
        ] );
      ( "checker",
        [
          case "accepts valid" checker_accepts_valid;
          case "vertical overlap" checker_rejects_vertical_overlap;
          case "capacity" checker_rejects_capacity;
          case "duplicate" checker_rejects_duplicate;
          case "negative height" checker_rejects_negative_height;
          case "off path" checker_rejects_off_path;
          case "negative first edge" checker_rejects_negative_first_edge;
          case "inverted range" checker_rejects_inverted_range;
          case "within bound" checker_within_bound;
          case "ufpp" checker_ufpp;
          case "subset_of" checker_subset_of;
        ] );
      ( "solution",
        [
          case "lift/union" solution_lift_union;
          case "union dup" solution_union_rejects_dup;
          case "makespan" solution_makespan;
        ] );
      ( "classify",
        [
          case "split3" classify_split3;
          case "strip bands" classify_strip_bands;
          classify_power_bands_multiplicity;
          classify_power_band_ranges;
        ] );
      ( "instance_stats",
        [
          stats_fractions_sum;
          stats_band_counts;
          case "known instance" stats_known_instance;
        ] );
      ( "gravity",
        [ case "drops" gravity_drops; gravity_preserves; gravity_idempotent ] );
      ( "ring",
        [
          case "route complement" ring_route_complement;
          case "cut roundtrip" ring_cut_roundtrip;
          case "to_ring_solution" ring_to_ring_solution;
          case "feasible checker" ring_feasible_checker;
        ] );
    ]
