module Task = Core.Task
module Path = Core.Path

let case = Helpers.case

let mk id first last d =
  Task.make ~id ~first_edge:first ~last_edge:last ~demand:d ~weight:1.0

let label_wraps () =
  Alcotest.(check char) "0 -> A" 'A' (Viz.Ascii.label 0);
  Alcotest.(check char) "25 -> Z" 'Z' (Viz.Ascii.label 25);
  Alcotest.(check char) "26 -> A" 'A' (Viz.Ascii.label 26)

let render_contains_tasks () =
  let p = Path.create [| 4; 4 |] in
  let sol = [ (mk 0 0 1 2, 0); (mk 1 0 0 2, 2) ] in
  let s = Viz.Ascii.render_solution p sol in
  Alcotest.(check bool) "has A" true (String.contains s 'A');
  Alcotest.(check bool) "has B" true (String.contains s 'B');
  (* 4 height rows + 1 axis row. *)
  Alcotest.(check int) "rows" 5
    (List.length (String.split_on_char '\n' (String.trim s)))

let render_profile_free_cells () =
  let p = Path.create [| 2; 4 |] in
  let s = Viz.Ascii.render_profile p in
  Alcotest.(check bool) "has free cells" true (String.contains s '.');
  (* Top row has a blank over the short edge. *)
  let top_row = List.hd (String.split_on_char '\n' s) in
  Alcotest.(check bool) "short edge blank at top" true (String.contains top_row ' ')

let render_rejects_tall () =
  let p = Path.create [| 10_000 |] in
  Alcotest.check_raises "too tall"
    (Invalid_argument "Ascii.render: profile too tall; pass ~max_height")
    (fun () -> ignore (Viz.Ascii.render_profile p))

let render_clips () =
  let p = Path.create [| 10_000 |] in
  let s = Viz.Ascii.render_profile ~max_height:10 p in
  Alcotest.(check int) "rows" 11
    (List.length (String.split_on_char '\n' (String.trim s)))

let render_loads_lines () =
  let p = Path.create [| 4; 6 |] in
  let s = Viz.Ascii.render_loads p [ mk 0 0 1 3 ] in
  let lines = String.split_on_char '\n' (String.trim s) in
  Alcotest.(check int) "one line per edge" 2 (List.length lines);
  Alcotest.(check bool) "shows load" true
    (String.length (List.hd lines) > 0 && String.contains s '#')

let render_never_crashes =
  Helpers.seed_property ~count:30 "renders any tiny solved instance" (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      if Path.max_capacity path > 200 then true
      else begin
        let sol = Exact.Sap_brute.solve path tasks in
        let s = Viz.Ascii.render_solution path sol in
        String.length s > 0
      end)

(* ---------- Svg ---------- *)

let svg_well_formed () =
  let p = Path.create [| 4; 4 |] in
  let sol = [ (mk 0 0 1 2, 0); (mk 1 0 0 2, 2) ] in
  let s = Viz.Svg.solution_svg p sol in
  let contains needle =
    let n = String.length needle and l = String.length s in
    let rec go i = i + n <= l && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "opens svg" true (contains "<svg");
  Alcotest.(check bool) "closes svg" true (contains "</svg>");
  Alcotest.(check bool) "has task rects" true (contains "fill-opacity")

let svg_colors_deterministic () =
  Alcotest.(check string) "same id same color" (Viz.Svg.color 5) (Viz.Svg.color 5);
  Alcotest.(check bool) "adjacent ids differ" true (Viz.Svg.color 0 <> Viz.Svg.color 1)

let svg_tall_profile_shrinks () =
  let p = Path.create [| 5000 |] in
  let s = Viz.Svg.profile_svg p in
  (* Canvas must stay bounded even for absurd capacities. *)
  Alcotest.(check bool) "bounded output" true (String.length s < 400_000)

let svg_never_crashes =
  Helpers.seed_property ~count:30 "svg renders any tiny solved instance"
    (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      let sol = Exact.Sap_brute.solve path tasks in
      String.length (Viz.Svg.solution_svg path sol) > 0)

let () =
  Alcotest.run "viz"
    [
      ( "ascii",
        [
          case "label" label_wraps;
          case "contains tasks" render_contains_tasks;
          case "profile free cells" render_profile_free_cells;
          case "rejects tall" render_rejects_tall;
          case "clips" render_clips;
          case "loads" render_loads_lines;
          render_never_crashes;
        ] );
      ( "svg",
        [
          case "well formed" svg_well_formed;
          case "colors" svg_colors_deterministic;
          case "tall profile" svg_tall_profile_shrinks;
          svg_never_crashes;
        ] );
    ]
